package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"myraft/internal/quorum"
	"myraft/internal/wire"
	"myraft/internal/workload"
)

// TestChaosRandomFaults drives a seeded random schedule of crashes,
// restarts, partitions, heals and graceful transfers against a FlexiRaft
// ring under continuous client load, then heals everything and verifies
// the safety invariants: ring-wide log equality and engine equality.
// This is the randomized complement to the deterministic §A.2 recovery
// tests and the shadow-testing soaks.
func TestChaosRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	c := bootCluster(t, testOptions(t, quorum.SingleRegionDynamic{}), PaperTopology(2, 0))
	rng := rand.New(rand.NewSource(seed))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Background load for the whole chaos phase.
	client := c.NewClient(0)
	driver := workload.DriverFunc(func(ctx context.Context, key string, value []byte) (time.Duration, error) {
		res, err := client.TryWrite(ctx, key, value)
		return res.Latency, err
	})
	wctx, stopLoad := context.WithCancel(ctx)
	loadDone := make(chan *workload.Result, 1)
	go func() { loadDone <- workload.Run(wctx, driver, workload.Config{Clients: 4, RetryOnError: true}) }()

	members := []wire.NodeID{
		"mysql-0", "mysql-1", "mysql-2",
		"lt-0-0", "lt-0-1", "lt-1-0", "lt-1-1", "lt-2-0", "lt-2-1",
	}
	mysqls := []wire.NodeID{"mysql-0", "mysql-1", "mysql-2"}
	down := map[wire.NodeID]bool{}
	partitioned := false

	ops := 0
	for elapsed := time.Duration(0); elapsed < 8*time.Second; {
		step := time.Duration(50+rng.Intn(250)) * time.Millisecond
		time.Sleep(step)
		elapsed += step
		ops++
		switch rng.Intn(5) {
		case 0: // crash someone (at most 2 down at once)
			if len(down) >= 2 {
				continue
			}
			id := members[rng.Intn(len(members))]
			if down[id] {
				continue
			}
			if err := c.Crash(id); err == nil {
				down[id] = true
			}
		case 1: // restart someone
			for id := range down {
				if err := c.Restart(id); err != nil {
					t.Fatalf("restart %s: %v", id, err)
				}
				delete(down, id)
				break
			}
		case 2: // partition a random pair
			a := members[rng.Intn(len(members))]
			b := members[rng.Intn(len(members))]
			if a != b {
				c.Net().Partition(a, b)
				partitioned = true
			}
		case 3: // heal all partitions
			if partitioned {
				c.Net().HealAll()
				partitioned = false
			}
		case 4: // attempt a graceful transfer (failures are fine)
			target := mysqls[rng.Intn(len(mysqls))]
			if !down[target] {
				_ = c.TransferLeadership(target)
			}
		}
	}

	// Heal the world and let the ring converge.
	c.Net().HealAll()
	for id := range down {
		if err := c.Restart(id); err != nil {
			t.Fatalf("final restart %s: %v", id, err)
		}
	}
	if _, err := c.AnyPrimary(ctx); err != nil {
		t.Fatalf("no primary after chaos: %v", err)
	}
	stopLoad()
	res := <-loadDone
	t.Logf("chaos(seed=%d): %d fault ops, %d successful writes, %d client errors",
		seed, ops, res.Latency.Count(), res.Errors)
	if res.Latency.Count() == 0 {
		t.Fatal("workload never made progress")
	}

	// Safety invariants after quiescence.
	deadline := time.Now().Add(30 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		lastErr = verifyRingConsistency(c)
		if lastErr == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("ring never converged after chaos: %v", lastErr)
}

// verifyRingConsistency checks log equality (from the newest common first
// index) and engine equality across settled appliers.
func verifyRingConsistency(c *Cluster) error {
	from := uint64(1)
	for _, m := range c.Members() {
		if m.IsDown() {
			return fmt.Errorf("member %s still down", m.Spec.ID)
		}
		var first uint64
		switch {
		case m.Server() != nil:
			first = m.Server().Log().FirstIndex()
		case m.Tailer() != nil:
			first = m.Tailer().Log().FirstIndex()
		}
		if first > from {
			from = first
		}
	}
	sums, err := c.LogChecksums(from)
	if err != nil {
		return err
	}
	var want uint32
	started := false
	for id, s := range sums {
		if !started {
			want, started = s, true
			continue
		}
		if s != want {
			return fmt.Errorf("log divergence at %s", id)
		}
	}
	var tails []uint64
	for _, m := range c.Members() {
		if m.Server() != nil {
			tails = append(tails, m.Server().Engine().LastCommitted().Index)
		}
	}
	for i := 1; i < len(tails); i++ {
		if tails[i] != tails[0] {
			return fmt.Errorf("appliers not settled: %v", tails)
		}
	}
	esums := c.EngineChecksums()
	started = false
	for id, s := range esums {
		if !started {
			want, started = s, true
			continue
		}
		if s != want {
			return fmt.Errorf("engine divergence at %s", id)
		}
	}
	return nil
}
