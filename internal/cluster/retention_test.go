package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// writeAndRotate drives count client writes, rotating the primary's
// binlog every rotateEvery writes so purge has sealed files to remove.
func writeAndRotate(t *testing.T, c *Cluster, ctx context.Context, count, rotateEvery, start int) {
	t.Helper()
	client := c.NewClient(0)
	for i := 0; i < count; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("key%d", start+i), []byte(fmt.Sprintf("v%d", start+i))); err != nil {
			t.Fatal(err)
		}
		if rotateEvery > 0 && (i+1)%rotateEvery == 0 {
			p, err := c.AnyPrimary(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Server().FlushBinaryLogs(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// purgeUntil runs purge rounds until the floor passes beyond, failing the
// test if it never does (e.g. durability stalled).
func purgeUntil(t *testing.T, c *Cluster, budget, beyond uint64) uint64 {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.PurgeOnce(budget); err == nil {
			if floor := c.PurgeFloor(); floor > beyond {
				return floor
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("purge floor never passed %d (at %d)", beyond, c.PurgeFloor())
	return 0
}

// TestPurgeAndSnapshotCatchup is the first acceptance scenario of the
// bounded-log lifecycle: a member crashes, the cluster purges history
// past its position, and on restart the member converges to the leader's
// engine state and GTID set through a snapshot install — log replay of
// the purged prefix being impossible.
func TestPurgeAndSnapshotCatchup(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	writeAndRotate(t, c, ctx, 10, 5, 0)
	lagTail := c.Member("mysql-1").Server().Log().LastOpID().Index
	if err := c.Crash("mysql-1"); err != nil {
		t.Fatal(err)
	}

	writeAndRotate(t, c, ctx, 30, 5, 10)
	floor := purgeUntil(t, c, 5, lagTail)
	leader := c.Leader()
	if leader == nil {
		t.Fatal("no leader after purge")
	}
	// Purge is file-granular, so FirstIndex lands on the file boundary at
	// or below the floor — but it must be past the crashed member's
	// position, or this test would exercise plain log replay.
	if fi := leader.Server().Log().FirstIndex(); fi <= lagTail {
		t.Fatalf("leader FirstIndex %d (floor %d) not past crashed member tail %d", fi, floor, lagTail)
	}

	if err := c.Restart("mysql-1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mysql-1 snapshot catch-up", func() bool {
		node, srv, ok := c.MySQLStack("mysql-1")
		if !ok {
			return false
		}
		lst, lsrv, lok := c.MySQLStack(leader.Spec.ID)
		if !lok {
			return false
		}
		return node.SnapshotStats().Installs >= 1 &&
			srv.Engine().LastCommitted() == lsrv.Engine().LastCommitted() &&
			lst.Status().LastOpID == node.Status().LastOpID
	})

	_, srv, _ := c.MySQLStack("mysql-1")
	_, lsrv, _ := c.MySQLStack(leader.Spec.ID)
	if got, want := srv.Checksum(), lsrv.Checksum(); got != want {
		t.Fatalf("engine checksum after catch-up = %08x, leader %08x", got, want)
	}
	if got, want := srv.GTIDExecuted().String(), lsrv.GTIDExecuted().String(); got != want {
		t.Fatalf("GTID set after catch-up = %q, leader %q", got, want)
	}
	if anchor := srv.Log().Anchor(); anchor.Index < lagTail {
		t.Fatalf("mysql-1 log anchor %v not past its crash position %d", anchor, lagTail)
	}

	// The member keeps replicating normally after the install.
	writeAndRotate(t, c, ctx, 5, 0, 40)
	waitFor(t, "post-install replication", func() bool {
		_, srv, ok := c.MySQLStack("mysql-1")
		if !ok {
			return false
		}
		v, ok2 := srv.Read("key44")
		return ok2 && string(v) == "v44"
	})
}

// TestAddMemberFastJoinViaSnapshot is the second acceptance scenario: a
// member added to a ring whose log prefix is purged joins through a
// snapshot install instead of replaying from index 1 (which no longer
// exists anywhere).
func TestAddMemberFastJoinViaSnapshot(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	writeAndRotate(t, c, ctx, 30, 5, 0)
	purgeUntil(t, c, 5, 1)

	if err := c.AddMember(ctx, MemberSpec{
		ID: "mysql-new", Region: "region-1", Kind: KindMySQL, Voter: true,
	}); err != nil {
		t.Fatal(err)
	}
	leader := c.Leader()
	if leader == nil {
		t.Fatal("no leader")
	}
	waitFor(t, "mysql-new snapshot fast-join", func() bool {
		node, srv, ok := c.MySQLStack("mysql-new")
		if !ok {
			return false
		}
		lnode, lsrv, lok := c.MySQLStack(leader.Spec.ID)
		if !lok {
			return false
		}
		return node.SnapshotStats().Installs >= 1 &&
			srv.Engine().LastCommitted() == lsrv.Engine().LastCommitted() &&
			lnode.Status().LastOpID == node.Status().LastOpID
	})

	_, srv, _ := c.MySQLStack("mysql-new")
	_, lsrv, _ := c.MySQLStack(leader.Spec.ID)
	if got, want := srv.Checksum(), lsrv.Checksum(); got != want {
		t.Fatalf("joined engine checksum = %08x, leader %08x", got, want)
	}
	if got, want := srv.GTIDExecuted().String(), lsrv.GTIDExecuted().String(); got != want {
		t.Fatalf("joined GTID set = %q, leader %q", got, want)
	}
	if srv.Log().Anchor().Index == 0 {
		t.Fatal("joined member has no snapshot anchor; it replayed a purged prefix?")
	}
}
