package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"myraft/internal/binlog"
	"myraft/internal/logstore"
	"myraft/internal/raft"
	"myraft/internal/wire"
)

// TestFollowerCrashKeepsAckedEntries is the §A.2 durability guarantee
// end-to-end: every entry a follower has acknowledged (its durable index)
// must still be in its binlog after a crash that tears off unflushed
// buffers, because acks are gated on the group fsync. Entries that were
// appended but never acked are allowed to vanish — and the follower must
// rejoin and reconverge regardless.
func TestFollowerCrashKeepsAckedEntries(t *testing.T) {
	opts := testOptions(t, nil)
	c := bootCluster(t, opts, smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	var lastIndex uint64
	for i := 0; i < 20; i++ {
		res, err := client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		lastIndex = res.OpID.Index
	}

	// Wait until the follower has acked everything, then capture its
	// durable cursor: that is exactly what it has promised survives.
	follower := c.Member("mysql-1")
	waitFor(t, "follower durability", func() bool {
		return follower.Node().DurableIndex() >= lastIndex
	})
	acked := follower.Node().DurableIndex()

	if err := c.Crash("mysql-1"); err != nil {
		t.Fatal(err)
	}

	// Reopen the crashed member's binlog directly from disk, exactly as
	// its restart would: the recovered tail must cover every acked entry.
	reopened, err := binlog.Open(binlog.Options{
		Dir:     filepath.Join(opts.Dir, "mysql-1", "logs"),
		Persona: binlog.PersonaRelay,
	})
	if err != nil {
		t.Fatal(err)
	}
	tail := reopened.LastOpID().Index
	// Verify the surviving prefix is readable, not just indexed.
	var scanned uint64
	serr := reopened.Scan(1, func(e *binlog.Entry) bool {
		scanned = e.OpID.Index
		return true
	})
	reopened.Close()
	if serr != nil {
		t.Fatal(serr)
	}
	if tail < acked || scanned < acked {
		t.Fatalf("acked entry lost in crash: acked through %d, recovered tail %d (scanned %d)", acked, tail, scanned)
	}

	if err := c.Restart("mysql-1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-restart log convergence", func() bool {
		sums, err := c.LogChecksums(1)
		if err != nil || len(sums) != 6 {
			return false
		}
		want := sums["mysql-0"]
		for _, s := range sums {
			if s != want {
				return false
			}
		}
		return true
	})
}

// TestWrapLogStoreInjectsLatency exercises the Options.WrapLogStore hook
// with logstore.Delayed: the cluster must come up, commit writes, and
// report grouped fsyncs through the durability stats.
func TestWrapLogStoreInjectsLatency(t *testing.T) {
	opts := testOptions(t, nil)
	opts.WrapLogStore = func(_ wire.NodeID, s raft.LogStore) raft.LogStore {
		return logstore.Delayed{Inner: s, SyncDelay: 2 * time.Millisecond}
	}
	c := bootCluster(t, opts, smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	leader := c.Leader()
	if leader == nil {
		t.Fatal("no leader")
	}
	st := leader.Node().DurabilityStats()
	if st.Fsyncs == 0 || st.DurableIndex == 0 {
		t.Fatalf("durability stats empty under wrapped store: %+v", st)
	}
}
