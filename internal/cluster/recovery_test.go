package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"myraft/internal/gtid"
	"myraft/internal/quorum"
	"myraft/internal/wire"
)

// The three crash-recovery cases of §A.2, exercised end to end.

// Case 1: the transaction never reached the binlog (in-memory payload
// lost, prepared engine state rolled back on restart). No reconciliation
// with the ring is needed.
func TestRecoveryCase1TransactionNeverLogged(t *testing.T) {
	c := bootCluster(t, testOptions(t, quorum.SingleRegionDynamic{}), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := client.Write(ctx, "durable", []byte("1")); err != nil {
		t.Fatal(err)
	}
	tailBefore := c.Member("mysql-0").Server().Log().LastOpID()

	// Cut the primary's raft node off from its own log by crashing the
	// whole member before any new write: the crash itself guarantees
	// nothing new was logged.
	if err := c.Crash("mysql-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AnyPrimary(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart("mysql-0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rejoin", func() bool {
		m := c.Member("mysql-0")
		return m.Server() != nil && m.Server().Log().LastOpID().Index >= tailBefore.Index
	})
	// No prepared leftovers, engine consistent.
	if got := c.Member("mysql-0").Server().Engine().PreparedCount(); got != 0 {
		t.Fatalf("prepared leftovers: %d", got)
	}
}

// Case 2: the transaction was written to the erstwhile leader's binlog
// but never reached other members. After failover the new leader (elected
// through the old data quorum's logtailers) does not have it; when the
// crashed leader rejoins, its extra entries are truncated and their GTIDs
// removed from all metadata.
func TestRecoveryCase2UnreplicatedTailTruncated(t *testing.T) {
	c := bootCluster(t, testOptions(t, quorum.SingleRegionDynamic{}), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("committed%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Isolate the primary so its next writes reach nobody, then write
	// (these proposals go to its binlog but can never consensus-commit).
	primary := c.Member("mysql-0")
	for _, other := range []string{"mysql-1", "lt-0-0", "lt-0-1", "lt-1-0", "lt-1-1"} {
		c.Net().Partition("mysql-0", wire.NodeID(other))
	}
	wctx, wcancel := context.WithTimeout(ctx, 100*time.Millisecond)
	primary.Server().Set(wctx, "doomed", []byte("x")) // fails: no quorum
	wcancel()
	doomedTail := primary.Server().Log().LastOpID()
	doomedGTIDs := primary.Server().GTIDExecuted()

	// Crash it; the ring elects a new leader through the logtailers that
	// hold the committed (but not the doomed) entries.
	if err := c.Crash("mysql-0"); err != nil {
		t.Fatal(err)
	}
	c.Net().HealAll()
	next, err := c.AnyPrimary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if next.Spec.ID == "mysql-0" {
		t.Fatal("crashed primary still primary")
	}
	// New writes on the new timeline.
	if _, err := client.Write(ctx, "newera", []byte("y")); err != nil {
		t.Fatal(err)
	}

	// Restart the erstwhile leader: it must truncate the doomed tail,
	// drop its GTIDs, and converge with the ring.
	if err := c.Restart("mysql-0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "doomed tail truncated", func() bool {
		m := c.Member("mysql-0")
		if m.Server() == nil {
			return false
		}
		if _, ok := m.Server().Read("doomed"); ok {
			return false
		}
		v, ok := m.Server().Read("newera")
		return ok && string(v) == "y"
	})
	rejoined := c.Member("mysql-0").Server()
	// The doomed transaction's GTID left all metadata (§3.3 step 4).
	if doomedTail.Index > 0 {
		doomed := gtid.GTID{Source: "uuid-mysql-0", ID: doomedGTIDs.NextID("uuid-mysql-0") - 1}
		if rejoined.GTIDExecuted().Contains(doomed) && !nextHasGTID(c, doomed) {
			t.Fatalf("doomed gtid %v survived truncation: %s", doomed, rejoined.GTIDExecuted())
		}
	}
	// Log checksums converge ring-wide.
	waitFor(t, "log equality after truncation", func() bool {
		sums, err := c.LogChecksums(1)
		if err != nil {
			return false
		}
		var want uint32
		first := true
		for _, s := range sums {
			if first {
				want, first = s, false
			} else if s != want {
				return false
			}
		}
		return !first
	})
}

// nextHasGTID reports whether the current primary's executed set has g
// (if it does, the entry actually replicated and case 3 applies).
func nextHasGTID(c *Cluster, g gtid.GTID) bool {
	m := c.Leader()
	if m == nil || m.Server() == nil {
		return false
	}
	return m.Server().GTIDExecuted().Contains(g)
}

// Case 3: the transaction reached the next leader before the crash; logs
// match, no truncation, and the transaction is reapplied from scratch by
// the applier on the rejoined member.
func TestRecoveryCase3ReplicatedEntryReapplied(t *testing.T) {
	c := bootCluster(t, testOptions(t, quorum.SingleRegionDynamic{}), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Committed writes that have replicated everywhere.
	for i := 0; i < 10; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "full replication", func() bool {
		sums := c.EngineChecksums()
		return len(sums) == 2 && sums["mysql-0"] == sums["mysql-1"]
	})

	// Crash the primary; its committed entries are on the next leader.
	if err := c.Crash("mysql-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AnyPrimary(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart("mysql-0"); err != nil {
		t.Fatal(err)
	}
	// No truncation: the rejoined log tail only grows, and the engine
	// converges via the applier.
	waitFor(t, "reapply convergence", func() bool {
		m := c.Member("mysql-0")
		if m.Server() == nil {
			return false
		}
		for i := 0; i < 10; i++ {
			if v, ok := m.Server().Read(fmt.Sprintf("k%d", i)); !ok || string(v) != "v" {
				return false
			}
		}
		return true
	})
}
