package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"myraft/internal/quorum"
	"myraft/internal/raft"
	"myraft/internal/transport"
	"myraft/internal/wire"
)

// testOptions builds fast-timing options for integration tests.
func testOptions(t *testing.T, strategy quorum.Strategy) Options {
	t.Helper()
	return Options{
		Name: "rs-test",
		Dir:  t.TempDir(),
		Raft: raft.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			Strategy:          strategy,
		},
		NetConfig: transport.Config{
			IntraRegion: 200 * time.Microsecond,
			CrossRegion: 2 * time.Millisecond,
		},
	}
}

// smallTopology: one region, one MySQL voter + 2 logtailers, plus one
// follower region.
func smallTopology() []MemberSpec { return PaperTopology(1, 0) }

func bootCluster(t *testing.T, opts Options, specs []MemberSpec) *Cluster {
	t.Helper()
	c, err := New(opts, specs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := c.Bootstrap(ctx, "mysql-0"); err != nil {
		t.Fatal(err)
	}
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestBootstrapAndWrite(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := client.Write(ctx, "user:1", []byte("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if res.OpID.IsZero() {
		t.Fatal("write returned zero OpID")
	}
	v, ok, err := client.Read(ctx, "user:1")
	if err != nil || !ok || string(v) != "alice" {
		t.Fatalf("read = %q %v %v", v, ok, err)
	}
}

func TestReplicasApplyAndConverge(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// The follower MySQL's applier catches up and engine contents match.
	waitFor(t, "replica convergence", func() bool {
		sums := c.EngineChecksums()
		return len(sums) == 2 && sums["mysql-0"] == sums["mysql-1"]
	})
	// Replica rejects client writes.
	if _, err := c.Member("mysql-1").Server().Set(ctx, "x", []byte("y")); err == nil {
		t.Fatal("replica accepted a client write")
	}
}

func TestLogEqualityAcrossRing(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 15; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "log equality", func() bool {
		sums, err := c.LogChecksums(1)
		if err != nil || len(sums) != 6 {
			return false
		}
		want := sums["mysql-0"]
		for _, s := range sums {
			if s != want {
				return false
			}
		}
		return true
	})
}

func TestGracefulPromotionMovesPrimary(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client.Write(ctx, "before", []byte("1"))

	if err := c.TransferLeadership("mysql-1"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForPrimary(ctx, "mysql-1"); err != nil {
		t.Fatal(err)
	}
	// The old primary is now a read-only replica.
	waitFor(t, "old primary demoted", func() bool {
		m := c.Member("mysql-0")
		return m.Server().IsReadOnly()
	})
	// Writes flow to the new primary; data written before survives.
	res, err := client.Write(ctx, "after", []byte("2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.OpID.IsZero() {
		t.Fatal("no opid")
	}
	v, ok, _ := client.Read(ctx, "before")
	if !ok || string(v) != "1" {
		t.Fatalf("pre-transfer data lost: %q %v", v, ok)
	}
}

func TestFailoverAfterPrimaryCrash(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("pre%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Crash("mysql-0"); err != nil {
		t.Fatal(err)
	}
	// A new primary is elected, promoted and published; client writes
	// resume. (The witness may win first and transfer away, §2.2.)
	m, err := c.AnyPrimary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec.ID == "mysql-0" {
		t.Fatal("crashed primary still published")
	}
	if _, err := client.Write(ctx, "post-failover", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Committed pre-crash data survived the failover.
	v, ok, _ := client.Read(ctx, "pre4")
	if !ok || string(v) != "v" {
		t.Fatalf("committed data lost in failover: %q %v", v, ok)
	}
}

func TestCrashedPrimaryRejoinsAsReplicaAndConverges(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client.Write(ctx, "a", []byte("1"))
	c.Crash("mysql-0")
	if _, err := c.AnyPrimary(ctx); err != nil {
		t.Fatal(err)
	}
	client.Write(ctx, "b", []byte("2"))
	if err := c.Restart("mysql-0"); err != nil {
		t.Fatal(err)
	}
	// The rejoiner demotes to replica, reapplies via its applier and
	// converges (§A.2 case 3).
	waitFor(t, "rejoiner convergence", func() bool {
		m := c.Member("mysql-0")
		if m.Server() == nil || !m.Server().IsReadOnly() {
			return false
		}
		v, ok := m.Server().Read("b")
		return ok && string(v) == "2"
	})
	sums := c.EngineChecksums()
	waitFor(t, "checksum equality", func() bool {
		sums = c.EngineChecksums()
		first := uint32(0)
		started := false
		for _, s := range sums {
			if !started {
				first = s
				started = true
				continue
			}
			if s != first {
				return false
			}
		}
		return started
	})
}

func TestFlexiRaftClusterCommitsWithRemoteRegionsDown(t *testing.T) {
	opts := testOptions(t, quorum.SingleRegionDynamic{})
	c := bootCluster(t, opts, PaperTopology(2, 0))
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client.Write(ctx, "warm", []byte("up"))
	// Kill both remote regions entirely.
	for r := 1; r <= 2; r++ {
		c.Crash(wire.NodeID(fmt.Sprintf("mysql-%d", r)))
		c.Crash(wire.NodeID(fmt.Sprintf("lt-%d-0", r)))
		c.Crash(wire.NodeID(fmt.Sprintf("lt-%d-1", r)))
	}
	res, err := client.Write(ctx, "in-region", []byte("commit"))
	if err != nil {
		t.Fatalf("in-region quorum write failed: %v", err)
	}
	if res.Latency > 2*time.Second {
		t.Fatalf("in-region commit took %v", res.Latency)
	}
}

func TestLearnerReceivesDataButNeverLeads(t *testing.T) {
	opts := testOptions(t, nil)
	c := bootCluster(t, opts, PaperTopology(1, 1))
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v"))
	}
	// The learner applies data.
	waitFor(t, "learner applies", func() bool {
		m := c.Member("learner-0")
		v, ok := m.Server().Read("k9")
		return ok && string(v) == "v"
	})
	// Crash every voter-capable MySQL and all logtailers: the learner
	// must NOT become leader.
	c.Crash("mysql-0")
	c.Crash("mysql-1")
	c.Crash("lt-0-0")
	c.Crash("lt-0-1")
	c.Crash("lt-1-0")
	c.Crash("lt-1-1")
	time.Sleep(100 * time.Millisecond)
	if st := c.Member("learner-0").Node().Status(); st.Role == raft.RoleLeader {
		t.Fatal("learner became leader")
	}
}

func TestFlushBinaryLogsRotatesEverywhere(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client.Write(ctx, "a", []byte("1"))
	primary := c.Member("mysql-0").Server()
	if err := primary.FlushBinaryLogs(ctx); err != nil {
		t.Fatal(err)
	}
	client.Write(ctx, "b", []byte("2"))
	// Every member's log rotated: at least 2 files, including logtailers.
	waitFor(t, "rotation everywhere", func() bool {
		for _, m := range c.Members() {
			var n int
			switch {
			case m.Server() != nil:
				n = len(m.Server().BinlogFiles())
			case m.Tailer() != nil:
				n = len(m.Tailer().Log().Files())
			}
			if n < 2 {
				return false
			}
		}
		return true
	})
}

func TestPurgeSafelyRespectsRegionWatermarks(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Stall region-1 so its watermark lags.
	c.Net().IsolateRegion("region-1")
	for i := 0; i < 10; i++ {
		client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v"))
	}
	primary := c.Member("mysql-0")
	primary.Server().FlushBinaryLogs(ctx)
	for i := 10; i < 20; i++ {
		client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v"))
	}
	filesBefore := len(primary.Server().BinlogFiles())
	if err := primary.Plugin().PurgeSafely(); err != nil {
		t.Fatal(err)
	}
	if got := len(primary.Server().BinlogFiles()); got != filesBefore {
		t.Fatalf("purged files while region-1 lagging: %d -> %d", filesBefore, got)
	}
	// Heal; watermarks advance; purge now proceeds.
	c.Net().HealAll()
	waitFor(t, "watermark advance and purge", func() bool {
		if err := primary.Plugin().PurgeSafely(); err != nil {
			return false
		}
		return len(primary.Server().BinlogFiles()) < filesBefore
	})
}

func TestMockElectionProtectsAgainstLaggingTargetRegion(t *testing.T) {
	opts := testOptions(t, quorum.SingleRegionDynamic{})
	opts.Raft.MockLagAllowance = 4
	c := bootCluster(t, opts, PaperTopology(1, 0))
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Lag region-1's logtailers.
	c.Net().Partition("mysql-0", "lt-1-0")
	c.Net().Partition("mysql-0", "lt-1-1")
	c.Net().Partition("mysql-1", "lt-1-0")
	c.Net().Partition("mysql-1", "lt-1-1")
	for i := 0; i < 30; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	err := c.TransferLeadership("mysql-1")
	if err == nil {
		t.Fatal("transfer into lagging region succeeded; mock election should have failed")
	}
	// Client writes continue against the original primary: no downtime.
	if _, err := client.Write(ctx, "still-up", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestProxyingClusterConverges(t *testing.T) {
	opts := testOptions(t, quorum.SingleRegionDynamic{})
	opts.Raft.Route = raft.RegionProxyRoute
	c := bootCluster(t, opts, PaperTopology(2, 0))
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "proxied log equality", func() bool {
		sums, err := c.LogChecksums(1)
		if err != nil || len(sums) != 9 {
			return false
		}
		want := sums["mysql-0"]
		for _, s := range sums {
			if s != want {
				return false
			}
		}
		return true
	})
}

func TestMembershipChangeThroughCluster(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	leader := c.Leader()
	op, err := leader.Node().AddMember(wire.Member{ID: "mysql-2", Region: "region-1", Voter: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := leader.Node().WaitCommitted(ctx, op.Index); err != nil {
		t.Fatal(err)
	}
	// All members see the new config.
	waitFor(t, "config propagation", func() bool {
		for _, m := range c.Members() {
			if m.Node() == nil {
				continue
			}
			if _, ok := m.Node().Status().Config.Find("mysql-2"); !ok {
				return false
			}
		}
		return true
	})
}

func TestAddAndRemoveMemberLifecycle(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Add a brand-new failover replica; it must catch up from scratch.
	if err := c.AddMember(ctx, MemberSpec{ID: "mysql-9", Region: "region-1", Kind: KindMySQL, Voter: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "new member catches up", func() bool {
		m := c.Member("mysql-9")
		if m == nil || m.Server() == nil {
			return false
		}
		v, ok := m.Server().Read("k9")
		return ok && string(v) == "v"
	})
	// It participates: crash the primary, new member or mysql-1 takes over.
	if err := c.Crash("mysql-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AnyPrimary(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart("mysql-0"); err != nil {
		t.Fatal(err)
	}
	// Remove it again; the config shrinks everywhere.
	if err := c.RemoveMember(ctx, "mysql-9"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "config shrinks", func() bool {
		l := c.Leader()
		if l == nil || l.Node() == nil {
			return false
		}
		_, ok := l.Node().Status().Config.Find("mysql-9")
		return !ok
	})
	if c.Member("mysql-9") != nil {
		t.Fatal("removed member still tracked")
	}
}

func TestLogMaintenanceRotatesAndPurges(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	primary := c.Member("mysql-0")
	mctx, mcancel := context.WithCancel(ctx)
	defer mcancel()
	go primary.Plugin().RunLogMaintenance(mctx, 10*time.Millisecond, 4096)

	// Keep writing until the maintenance loop rotates (bounded), so the
	// test is robust to scheduler slowness (e.g. under the race detector).
	payload := make([]byte, 400)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; len(primary.Server().BinlogFiles()) < 2; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("maintenance never rotated; files=%v", primary.Server().BinlogFiles())
		}
		if _, err := client.Write(ctx, fmt.Sprintf("big%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "purge", func() bool {
		files := primary.Server().BinlogFiles()
		return files[0].FirstIndex > 1 || len(files) < 8
	})
}
