// retention.go is the cluster purge coordinator of the bounded-log
// lifecycle (§A.1): the leader periodically advances a cluster-wide purge
// floor — the first log index every member is asked to retain — and
// drives PURGE BINARY LOGS on every live member with it. The floor is
// the minimum of what every healthy (up) member has durably replicated
// and the retention budget below the log tail; members that are down, or
// lagging beyond the budget, are sacrificed: they will catch up through
// snapshot install instead of log replay.
package cluster

import (
	"context"
	"fmt"
	"time"

	"myraft/internal/raft"
)

// RetentionOptions tunes the purge coordinator.
type RetentionOptions struct {
	// RetentionEntries is the history budget: the number of committed
	// entries below the tail the cluster keeps for crashed or lagging
	// members to replay. A member further behind than this is sacrificed
	// to snapshot catch-up rather than holding history hostage.
	RetentionEntries uint64
	// Interval is the coordinator period for RunRetention (default 1s).
	Interval time.Duration
}

// PurgeFloor returns the last cluster-wide purge floor the coordinator
// drove (0 before the first purge round).
func (c *Cluster) PurgeFloor() uint64 { return c.purgeFloor.Load() }

// PurgeOnce runs one round of the purge protocol: compute the floor on
// the current leader and drive every live member's purge with it. It
// returns the floor driven (0 when nothing was purgeable). Each member
// additionally clamps the floor to its own applied position
// (mysql.Server.PurgeLogsTo), so an in-flight applier is never starved.
func (c *Cluster) PurgeOnce(retentionEntries uint64) (uint64, error) {
	leader := c.Leader()
	if leader == nil || leader.Node() == nil {
		return 0, fmt.Errorf("cluster: purge: no leader")
	}
	st := leader.Node().Status()
	if st.Role != raft.RoleLeader {
		return 0, fmt.Errorf("cluster: purge: leadership lost mid-round")
	}
	tail := st.LastOpID.Index
	if tail <= retentionEntries {
		return 0, nil // the whole log fits the budget
	}

	// Healthy floor: nothing a live member has not durably replicated is
	// purged, so every up member keeps repairing through AppendEntries.
	// Down members do not hold the floor — that is the sacrifice.
	minDurable := st.DurableIndex
	c.mu.RLock()
	for id, m := range c.members {
		if m.down || id == leader.Spec.ID {
			continue
		}
		if match, ok := st.Match[id]; ok && match < minDurable {
			minDurable = match
		}
	}
	c.mu.RUnlock()

	floor := minDurable + 1
	if budgetFloor := tail - retentionEntries + 1; floor > budgetFloor {
		// Retain at least the budget below the tail even when every member
		// is caught up: restarting members replay from here.
		floor = budgetFloor
	}
	// Only consensus-committed history is ever purged; an uncommitted
	// suffix may still be truncated and must stay reachable.
	if floor > st.CommitIndex+1 {
		floor = st.CommitIndex + 1
	}
	if floor <= 1 || floor <= c.purgeFloor.Load() {
		return 0, nil
	}

	// Drive the purge on every live member, then let each raft node drop
	// its in-memory prefix so below-floor peers take the snapshot path.
	c.mu.RLock()
	type target struct {
		m    *Member
		node *raft.Node
	}
	var targets []target
	for _, m := range c.members {
		if m.down || m.node == nil {
			continue
		}
		targets = append(targets, target{m: m, node: m.node})
	}
	c.mu.RUnlock()
	for _, t := range targets {
		var err error
		switch {
		case t.m.server != nil:
			err = t.m.server.PurgeLogsTo(floor)
		case t.m.tailer != nil:
			err = t.m.tailer.Log().PurgeTo(floor)
		}
		if err != nil {
			return 0, fmt.Errorf("cluster: purge %s: %w", t.m.Spec.ID, err)
		}
		t.node.NotePurged()
	}
	c.purgeFloor.Store(floor)
	return floor, nil
}

// RunRetention runs the purge coordinator until ctx is done. Rounds
// without a leader, or with nothing to purge, are skipped silently; the
// protocol is idempotent and self-healing across leadership changes
// because the floor is recomputed from live replication state each round.
//
// Deprecated: a process should let multiraft.Runtime.RunRetention drive
// every hosted ring from one scheduler instead of running a ticker per
// ring; this per-ring loop remains for tests and direct ring embedding.
func (c *Cluster) RunRetention(ctx context.Context, opts RetentionOptions) {
	interval := opts.Interval
	if interval == 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		_, _ = c.PurgeOnce(opts.RetentionEntries)
	}
}
