package cluster

// observability.go publishes each member's operational state into its
// metrics registry at scrape time. The write-path stage histograms stream
// into the registry continuously (internal/trace); everything else — raft
// cursors, durability-pipeline counters, applier lag, binlog I/O totals —
// is point-in-time state refreshed here, so a scrape always reflects the
// member as it is now rather than as of some background tick.

import (
	"myraft/internal/binlog"
	"myraft/internal/metrics"
	"myraft/internal/raft"
	"myraft/internal/trace"
	"myraft/internal/wire"
)

// MemberRegistry is one up member's refreshed instrument registry, ready
// for a Prometheus render under a member label.
type MemberRegistry struct {
	ID     wire.NodeID
	Reg    *metrics.Registry
	Tracer *trace.Tracer
}

// MemberRegistries refreshes and returns the registries of every up
// member, in spec order. Crashed members are skipped: their registries
// (and trace histories) survive and reappear on restart.
func (c *Cluster) MemberRegistries() []MemberRegistry {
	c.mu.RLock()
	live := make([]*Member, 0, len(c.specs))
	for _, s := range c.specs {
		if m := c.members[s.ID]; m != nil && !m.down && m.node != nil && m.reg != nil {
			live = append(live, m)
		}
	}
	c.mu.RUnlock()

	out := make([]MemberRegistry, 0, len(live))
	for _, m := range live {
		m.refreshMetrics()
		out = append(out, MemberRegistry{ID: m.Spec.ID, Reg: m.reg, Tracer: m.tracer})
	}
	return out
}

// refreshMetrics publishes the member's current raft, durability, binlog,
// and applier state as registry gauges. Totals that are semantically
// counters are still exported as gauges: they are read off lower-layer
// snapshots rather than incremented here, and a gauge render is honest
// about that.
func (m *Member) refreshMetrics() {
	node, reg := m.node, m.reg
	if node == nil || reg == nil {
		return
	}
	st := node.Status()
	reg.Gauge("raft_term").Set(int64(st.Term))
	var leading int64
	if st.Role == raft.RoleLeader {
		leading = 1
	}
	reg.Gauge("raft_is_leader").Set(leading)
	reg.Gauge("raft_commit_index").Set(int64(st.CommitIndex))
	reg.Gauge("raft_last_index").Set(int64(st.LastOpID.Index))
	reg.Gauge("raft_first_index").Set(int64(st.FirstIndex))

	ds := node.DurabilityStats()
	reg.Gauge("raft_durable_index").Set(int64(ds.DurableIndex))
	reg.Gauge("raft_appended_index").Set(int64(ds.AppendedIndex))
	reg.Gauge("raft_unsynced_bytes").Set(ds.UnsyncedBytes)
	reg.Gauge("raft_fsyncs").Set(ds.Fsyncs)
	reg.Gauge("raft_loop_blocked_ns").Set(int64(ds.LoopBlocked))

	var log *binlog.Log
	switch {
	case m.server != nil:
		log = m.server.Log()
	case m.tailer != nil:
		log = m.tailer.Log()
	}
	if log != nil {
		ls := log.Stats()
		reg.Gauge("binlog_appends").Set(ls.Appends)
		reg.Gauge("binlog_append_bytes").Set(ls.AppendBytes)
		reg.Gauge("binlog_syncs").Set(ls.Syncs)
		reg.Gauge("binlog_noop_syncs").Set(ls.NoopSyncs)
	}

	if m.server != nil {
		as := m.server.ApplyStatus()
		var running int64
		if as.Running {
			running = 1
		}
		reg.Gauge("apply_running").Set(running)
		reg.Gauge("apply_workers").Set(int64(as.Workers))
		reg.Gauge("apply_busy_workers").Set(int64(as.BusyWorkers))
		reg.Gauge("apply_position").Set(int64(as.Position))
		reg.Gauge("apply_lag").Set(int64(as.Lag))
		reg.Gauge("apply_txns").Set(as.AppliedTxns)
		reg.Gauge("apply_conflict_fallbacks").Set(as.ConflictFallbacks)
		reg.Gauge("apply_parallel_batches").Set(as.ParallelBatches)

		ps := m.server.PipelineStatus()
		reg.Gauge("pipeline_depth").Set(int64(ps.Depth))
		reg.Gauge("pipeline_inflight_groups").Set(int64(ps.InFlight))
		reg.Gauge("pipeline_queue_len").Set(int64(ps.QueueLen))
		reg.Gauge("pipeline_groups_proposed").Set(ps.GroupsProposed)
		reg.Gauge("pipeline_txns_committed").Set(ps.TxnsCommitted)
		reg.Gauge("pipeline_txns_aborted").Set(ps.TxnsAborted)
		reg.Gauge("pipeline_group_size_mean").Set(ps.GroupSizeMean)
		reg.Gauge("pipeline_group_size_p95").Set(ps.GroupSizeP95)
		reg.Gauge("pipeline_group_size_max").Set(ps.GroupSizeMax)
		reg.Gauge("pipeline_flush_busy_ns").Set(ps.FlushBusyNs)
		reg.Gauge("pipeline_quorum_busy_ns").Set(ps.QuorumBusyNs)
		reg.Gauge("pipeline_engine_busy_ns").Set(ps.EngineBusyNs)
		reg.Gauge("pipeline_syncs_coalesced").Set(ps.SyncsCoalesced)
		reg.Gauge("engine_syncs").Set(ps.EngineSyncs)
		reg.Gauge("engine_noop_syncs").Set(ps.EngineNoopSyncs)
	}
}
