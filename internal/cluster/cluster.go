// Package cluster assembles one MyRaft replicaset — a single raft ring
// of MySQL servers and logtailers spread across regions, wired together
// over the simulated network, with the plugin and Raft node stacked on
// each member and a service-discovery registry that promotion publishes
// into.
//
// Cluster is the per-ring building block, not a process runtime: a
// process always hosts rings inside a multiraft.Runtime (the classic
// standalone replicaset is a runtime with Shards: 1), which owns the
// shared transport demux, routing table, retention scheduling, and the
// admin API. Drop down to this package to operate one ring — members,
// promotion, checksums, per-ring reads — via Runtime.Shard.
package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"myraft/internal/clock"
	"myraft/internal/discovery"
	"myraft/internal/logtailer"
	"myraft/internal/metrics"
	"myraft/internal/mysql"
	"myraft/internal/plugin"
	"myraft/internal/raft"
	"myraft/internal/readpath"
	"myraft/internal/storage"
	"myraft/internal/trace"
	"myraft/internal/transport"
	"myraft/internal/wire"
)

// Kind is the entity type of a member.
type Kind int

const (
	// KindMySQL is a full MySQL server (primary-capable when Voter).
	KindMySQL Kind = iota
	// KindLogtailer is a witness: log only, no storage engine.
	KindLogtailer
)

// MemberSpec describes one replicaset member.
type MemberSpec struct {
	ID     wire.NodeID
	Region wire.Region
	Kind   Kind
	// Voter: MySQL voters are failover replicas, non-voters are learners
	// (Table 1). Logtailers are always voters.
	Voter bool
}

// Options configures a replicaset.
type Options struct {
	// Name is the replicaset name in service discovery.
	Name string
	// Dir is the root directory for member state (a subdirectory per
	// member).
	Dir string
	// Raft is the per-node Raft config template; ID/Region/StateDir are
	// filled per member.
	Raft raft.Config
	// Net is the shared network; one is created when nil.
	Net *transport.Network
	// NetConfig configures the created network when Net is nil.
	NetConfig transport.Config
	// Registry is the shared discovery registry; one is created when nil.
	Registry *discovery.Registry
	// Clock defaults to the real clock.
	Clock clock.Clock
	// ReadSampleCap bounds the per-level read latency histograms to this
	// many retained samples (reservoir sampling) for open-ended read-heavy
	// runs; 0 keeps every sample (exact percentiles).
	ReadSampleCap int
	// Seed, when non-zero, seeds the network jitter RNG (unless NetConfig
	// already carries an explicit seed) so a whole replicaset run is
	// reproducible from one number. The chaos harness derives everything —
	// schedule, fault RNGs, network jitter — from this.
	Seed int64
	// WrapLogStore, when set, wraps each member's log store before it is
	// handed to raft.NewNode. Experiments use it to model storage-device
	// latency (logstore.Delayed); the chaos harness injects fsync stalls
	// and errors (logstore.Faulty). Called again on every restart of the
	// member, so wrappers with mutable fault state start each life fresh.
	WrapLogStore func(id wire.NodeID, s raft.LogStore) raft.LogStore
	// Transport, when set, supplies each member's transport instead of
	// registering a fresh endpoint on the shared network. The multi-shard
	// runtime (internal/multiraft) uses it to hand every shard's members
	// ports of one demultiplexed endpoint per node — calling Register per
	// shard would replace that endpoint and orphan the demux. Called again
	// on every restart of the member; WrapTransport still applies on top.
	Transport func(id wire.NodeID, region wire.Region) transport.Transport
	// WrapTransport, when set, wraps each member's network endpoint before
	// it is handed to raft.NewNode. The chaos harness uses it to inject
	// message drops, delays, duplication and asymmetric partitions
	// (transport.Fault). Called again on every restart of the member.
	WrapTransport func(id wire.NodeID, t transport.Transport) transport.Transport
	// WrapClock, when set, derives each member's node clock from the
	// cluster clock. The chaos harness uses it to give members individually
	// skewed clocks (clock.Skewed) while the network keeps real time.
	WrapClock func(id wire.NodeID, c clock.Clock) clock.Clock
	// ReadWitness, when set, observes every successful read served through
	// the cluster's readers (readpath.Witness).
	ReadWitness readpath.Witness
	// ApplyWorkers sets every MySQL member's replica-apply concurrency
	// (mysql.Options.ApplyWorkers): 0 keeps the mysql default, 1 forces
	// serial apply.
	ApplyWorkers int
	// CommitPipelineDepth sets every MySQL member's primary commit
	// pipeline depth (mysql.Options.CommitPipelineDepth): 0 keeps the
	// mysql default, 1 forces the serial (non-overlapped) pipeline.
	CommitPipelineDepth int
	// Engine is the storage-engine option template applied to every MySQL
	// member (Dir is filled per member). Experiments use it to model
	// device latencies (storage.Options.SyncLatency, PrepareLatency).
	Engine storage.Options
	// TraceSampleEvery sets write-path trace sampling for every member: 0
	// samples every transaction (the per-stage histograms are capped, so
	// always-on tracing stays bounded), n > 1 samples every nth, and a
	// negative value disables tracing entirely.
	TraceSampleEvery int
}

// Member is one running replicaset member.
type Member struct {
	Spec MemberSpec

	dir    string
	server *mysql.Server        // nil for logtailers
	tailer *logtailer.Logtailer // nil for MySQL members
	plug   *plugin.Plugin       // nil for logtailers
	node   *raft.Node
	down   bool

	// reg and tracer are created once per member and survive crash/restart,
	// so latency history and slow-op journals span the member's whole
	// lifetime rather than one process incarnation.
	reg    *metrics.Registry
	tracer *trace.Tracer
}

// Server returns the member's MySQL server (nil for logtailers).
func (m *Member) Server() *mysql.Server { return m.server }

// Node returns the member's Raft node (nil while crashed).
func (m *Member) Node() *raft.Node { return m.node }

// Plugin returns the member's mysql_raft_repl plugin (nil for
// logtailers).
func (m *Member) Plugin() *plugin.Plugin { return m.plug }

// Tailer returns the member's logtailer (nil for MySQL members).
func (m *Member) Tailer() *logtailer.Logtailer { return m.tailer }

// IsDown reports whether the member is currently crashed.
func (m *Member) IsDown() bool { return m.down }

// Metrics returns the member's instrument registry. It is created at first
// start and survives crash/restart.
func (m *Member) Metrics() *metrics.Registry { return m.reg }

// Tracer returns the member's write-path tracer (nil when tracing is
// disabled via Options.TraceSampleEvery < 0).
func (m *Member) Tracer() *trace.Tracer { return m.tracer }

// Cluster is a running replicaset.
type Cluster struct {
	opts     Options
	specs    []MemberSpec
	boot     wire.Config
	net      *transport.Network
	registry *discovery.Registry
	clk      clock.Clock
	ownsNet  bool

	// mu guards the members map values' mutable fields (server/node/down)
	// against concurrent Crash/Restart and reader access.
	mu      sync.RWMutex
	members map[wire.NodeID]*Member

	// purgeFloor is the last cluster-wide purge floor driven by the purge
	// coordinator (retention.go): the first log index every member is asked
	// to retain.
	purgeFloor atomic.Uint64

	// readMetrics is the shared read-path observability sink (readpath.go).
	readMetrics *readpath.Metrics
}

// New builds and starts every member of the replicaset. No leader exists
// until Bootstrap (or an election timeout) elects one.
func New(opts Options, specs []MemberSpec) (*Cluster, error) {
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "myraft-cluster-")
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		opts.Dir = dir
	}
	if opts.Name == "" {
		opts.Name = "replicaset"
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	c := &Cluster{
		opts:     opts,
		specs:    specs,
		net:      opts.Net,
		registry: opts.Registry,
		clk:      opts.Clock,
		members:  make(map[wire.NodeID]*Member),
	}
	if opts.ReadSampleCap > 0 {
		c.readMetrics = readpath.NewMetricsCapped(opts.ReadSampleCap)
	} else {
		c.readMetrics = readpath.NewMetrics()
	}
	if c.net == nil {
		netCfg := opts.NetConfig
		if netCfg.Seed == 0 {
			netCfg.Seed = opts.Seed
		}
		c.net = transport.New(netCfg, opts.Clock)
		c.ownsNet = true
	}
	if c.registry == nil {
		c.registry = discovery.NewRegistry()
	}
	c.boot = BootConfig(specs)
	for _, spec := range specs {
		m := &Member{Spec: spec, dir: filepath.Join(opts.Dir, string(spec.ID))}
		c.members[spec.ID] = m
		if err := c.startMember(m); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// BootConfig derives the Raft membership from member specs.
func BootConfig(specs []MemberSpec) wire.Config {
	var cfg wire.Config
	for _, s := range specs {
		cfg.Members = append(cfg.Members, wire.Member{
			ID:      s.ID,
			Region:  s.Region,
			Voter:   s.Voter || s.Kind == KindLogtailer,
			Witness: s.Kind == KindLogtailer,
		})
	}
	return cfg
}

// startMember builds the full stack for one member: server (or tailer),
// plugin, raft node, network endpoint.
func (c *Cluster) startMember(m *Member) error {
	var ep transport.Transport
	if c.opts.Transport != nil {
		ep = c.opts.Transport(m.Spec.ID, m.Spec.Region)
	} else {
		ep = c.net.Register(m.Spec.ID, m.Spec.Region)
	}
	// Observability state is member-lifetime, not process-lifetime: keep
	// histories and the slow-op journal across crash/restart cycles.
	if m.reg == nil {
		m.reg = metrics.NewRegistry()
		if c.opts.TraceSampleEvery >= 0 {
			m.tracer = trace.New(m.reg)
			if c.opts.TraceSampleEvery > 1 {
				m.tracer.SetSampleEvery(uint64(c.opts.TraceSampleEvery))
			}
		}
	}
	rcfg := c.opts.Raft
	rcfg.ID = m.Spec.ID
	rcfg.Region = m.Spec.Region
	rcfg.StateDir = filepath.Join(m.dir, "raft")
	rcfg.Tracer = m.tracer
	if m.Spec.Kind == KindMySQL && rcfg.ElectionTimeoutBias == 0 {
		// Let logtailers campaign first on failover (§4.1: the witness
		// holds the longest log and wins cleanly, then transfers to a
		// MySQL voter); MySQL members wait one extra beat.
		hb := rcfg.HeartbeatInterval
		if hb == 0 {
			hb = 500 * time.Millisecond
		}
		rcfg.ElectionTimeoutBias = hb
	}

	var store raft.LogStore
	var cb raft.Callbacks
	switch m.Spec.Kind {
	case KindMySQL:
		srv, err := mysql.NewServer(mysql.Options{
			ID:                  m.Spec.ID,
			Dir:                 m.dir,
			ApplyWorkers:        c.opts.ApplyWorkers,
			CommitPipelineDepth: c.opts.CommitPipelineDepth,
			Engine:              c.opts.Engine,
			Tracer:              m.tracer,
		})
		if err != nil {
			return err
		}
		plug := plugin.New(srv, c.opts.Name, c.registry)
		m.server = srv
		m.plug = plug
		store, cb = plug, plug
		// Snapshot catch-up: the plugin checkpoints the engine when this
		// member leads, and installs received checkpoints when it lags.
		rcfg.SnapshotProvider = plug
		rcfg.SnapshotSink = plug
	case KindLogtailer:
		lt, err := logtailer.New(m.Spec.ID, m.dir)
		if err != nil {
			return err
		}
		m.tailer = lt
		store, cb = lt.LogStore(), lt
		// A witness has no engine to checkpoint, so it can only be a
		// snapshot target: installing resets its log at the anchor.
		rcfg.SnapshotSink = lt
	default:
		return fmt.Errorf("cluster: unknown member kind %d", m.Spec.Kind)
	}

	if c.opts.WrapLogStore != nil {
		store = c.opts.WrapLogStore(m.Spec.ID, store)
	}
	var tr transport.Transport = ep
	if c.opts.WrapTransport != nil {
		tr = c.opts.WrapTransport(m.Spec.ID, ep)
	}
	nodeClk := c.clk
	if c.opts.WrapClock != nil {
		nodeClk = c.opts.WrapClock(m.Spec.ID, c.clk)
	}
	node, err := raft.NewNode(rcfg, store, cb, tr, nodeClk)
	if err != nil {
		return err
	}
	if m.plug != nil {
		m.plug.AttachNode(node)
	}
	if m.tailer != nil {
		m.tailer.AttachNode(node)
	}
	if err := node.Start(c.boot); err != nil {
		return err
	}
	m.node = node
	m.down = false
	return nil
}

// Member returns the member with the given ID. Member getters reflect
// the state at call time; during concurrent Crash/Restart use the
// Cluster-level accessors instead.
func (c *Cluster) Member(id wire.NodeID) *Member {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.members[id]
}

// Members returns all members.
func (c *Cluster) Members() []*Member {
	out := make([]*Member, 0, len(c.members))
	for _, s := range c.specs {
		out = append(out, c.members[s.ID])
	}
	return out
}

// MySQLStack atomically snapshots a MySQL member's live stack — its Raft
// node and server — under the cluster lock, so callers racing with
// Crash/Restart (the chaos harness's invariant samplers) never observe a
// half-torn member. ok is false while the member is down, unknown, or
// not a MySQL server.
func (c *Cluster) MySQLStack(id wire.NodeID) (*raft.Node, *mysql.Server, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.members[id]
	if m == nil || m.down || m.node == nil || m.server == nil {
		return nil, nil, false
	}
	return m.node, m.server, true
}

// DownMembers returns the IDs of currently-crashed members, snapshotted
// under the cluster lock.
func (c *Cluster) DownMembers() []wire.NodeID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []wire.NodeID
	for _, s := range c.specs {
		if m := c.members[s.ID]; m != nil && m.down {
			out = append(out, s.ID)
		}
	}
	return out
}

// Net returns the shared network (fault injection, stats).
func (c *Cluster) Net() *transport.Network { return c.net }

// Registry returns the discovery registry.
func (c *Cluster) Registry() *discovery.Registry { return c.registry }

// Name returns the replicaset name.
func (c *Cluster) Name() string { return c.opts.Name }

// Bootstrap elects the given MySQL member as the initial leader and waits
// until it has completed promotion (writes enabled, discovery published).
func (c *Cluster) Bootstrap(ctx context.Context, id wire.NodeID) error {
	m := c.members[id]
	if m == nil || m.server == nil {
		return fmt.Errorf("cluster: %s is not a MySQL member", id)
	}
	m.node.CampaignNow()
	return c.WaitForPrimary(ctx, id)
}

// WaitForPrimary blocks until the given member is the published primary
// with writes enabled.
func (c *Cluster) WaitForPrimary(ctx context.Context, id wire.NodeID) error {
	for {
		c.mu.RLock()
		m := c.members[id]
		ready := m != nil && m.node != nil && m.server != nil && !m.down
		var node *raft.Node
		var srv *mysql.Server
		if ready {
			node, srv = m.node, m.server
		}
		c.mu.RUnlock()
		if ready && node.Status().Role == raft.RoleLeader && !srv.IsReadOnly() {
			if pub, ok := c.registry.Primary(c.opts.Name); ok && pub == id {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: waiting for %s to become primary: %w", id, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// AnyPrimary blocks until some MySQL member is the published primary and
// returns it.
func (c *Cluster) AnyPrimary(ctx context.Context) (*Member, error) {
	for {
		if id, ok := c.registry.Primary(c.opts.Name); ok {
			c.mu.RLock()
			m := c.members[id]
			ok := m != nil && m.server != nil && !m.down && !m.server.IsReadOnly()
			c.mu.RUnlock()
			if ok {
				return m, nil
			}
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: waiting for a primary: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// Leader returns the member currently reporting itself Raft leader, or
// nil. When several members claim leadership (a deposed leader that has
// not yet heard of its successor's term), the claimant with the highest
// term wins — the lower-term claim is definitively stale.
func (c *Cluster) Leader() *Member {
	c.mu.RLock()
	candidates := make([]*Member, 0, len(c.members))
	nodes := make([]*raft.Node, 0, len(c.members))
	for _, m := range c.members {
		if m.down || m.node == nil {
			continue
		}
		candidates = append(candidates, m)
		nodes = append(nodes, m.node)
	}
	c.mu.RUnlock()
	var best *Member
	var bestTerm uint64
	for i, n := range nodes {
		if st := n.Status(); st.Role == raft.RoleLeader && (best == nil || st.Term > bestTerm) {
			best = candidates[i]
			bestTerm = st.Term
		}
	}
	return best
}

// primaryServer resolves the published primary's server under the lock.
func (c *Cluster) primaryServer() (*mysql.Server, wire.NodeID, bool) {
	id, ok := c.registry.Primary(c.opts.Name)
	if !ok {
		return nil, "", false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.members[id]
	if m == nil || m.server == nil || m.down {
		return nil, "", false
	}
	return m.server, id, true
}

// Crash simulates a hard crash of a member: the process dies (torn
// buffers, dropped memtable) and the host drops off the network.
func (c *Cluster) Crash(id wire.NodeID) error {
	c.mu.Lock()
	m := c.members[id]
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown member %s", id)
	}
	if m.down {
		c.mu.Unlock()
		return nil
	}
	node, server, tailer := m.node, m.server, m.tailer
	m.node = nil
	m.server = nil
	m.plug = nil
	m.tailer = nil
	m.down = true
	c.mu.Unlock()

	c.net.SetNodeDown(id, true)
	node.Stop()
	if server != nil {
		server.Crash()
	}
	if tailer != nil {
		tailer.Crash()
	}
	return nil
}

// Restart brings a crashed member back: state is recovered from disk
// (engine WAL replay, torn log tail truncation, persisted Raft term) and
// the member rejoins the ring as a follower (§A.2).
func (c *Cluster) Restart(id wire.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.members[id]
	if m == nil {
		return fmt.Errorf("cluster: unknown member %s", id)
	}
	if !m.down {
		return nil
	}
	c.net.SetNodeDown(id, false)
	return c.startMember(m)
}

// AddMember proposes the new member through Raft (§2.2), waits for the
// config entry to commit, and boots the member's process so it joins the
// ring and catches up from the leader.
func (c *Cluster) AddMember(ctx context.Context, spec MemberSpec) error {
	leader := c.Leader()
	if leader == nil || leader.Node() == nil {
		return fmt.Errorf("cluster: no leader")
	}
	op, err := leader.Node().AddMember(wire.Member{
		ID:      spec.ID,
		Region:  spec.Region,
		Voter:   spec.Voter || spec.Kind == KindLogtailer,
		Witness: spec.Kind == KindLogtailer,
	})
	if err != nil {
		return err
	}
	if err := leader.Node().WaitCommitted(ctx, op.Index); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[spec.ID]; ok {
		return fmt.Errorf("cluster: member %s already running", spec.ID)
	}
	m := &Member{Spec: spec, dir: filepath.Join(c.opts.Dir, string(spec.ID))}
	c.members[spec.ID] = m
	c.specs = append(c.specs, spec)
	return c.startMember(m)
}

// RemoveMember proposes removal through Raft, waits for commit, and shuts
// the member's process down.
func (c *Cluster) RemoveMember(ctx context.Context, id wire.NodeID) error {
	leader := c.Leader()
	if leader == nil || leader.Node() == nil {
		return fmt.Errorf("cluster: no leader")
	}
	op, err := leader.Node().RemoveMember(id)
	if err != nil {
		return err
	}
	if err := leader.Node().WaitCommitted(ctx, op.Index); err != nil {
		return err
	}
	c.mu.Lock()
	m := c.members[id]
	if m == nil {
		c.mu.Unlock()
		return nil
	}
	node, server, tailer := m.node, m.server, m.tailer
	m.node, m.server, m.plug, m.tailer = nil, nil, nil, nil
	m.down = true
	delete(c.members, id)
	for i, s := range c.specs {
		if s.ID == id {
			c.specs = append(c.specs[:i], c.specs[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	if node != nil {
		node.Stop()
	}
	if server != nil {
		server.Close()
	}
	if tailer != nil {
		tailer.Close()
	}
	return nil
}

// TransferLeadership gracefully moves leadership to target (§4.3 mock
// election included).
func (c *Cluster) TransferLeadership(target wire.NodeID) error {
	leader := c.Leader()
	if leader == nil {
		return fmt.Errorf("cluster: no leader")
	}
	return leader.node.TransferLeadership(target)
}

// EngineChecksums returns per-member storage engine checksums (MySQL
// members only), the §5.1 correctness check.
func (c *Cluster) EngineChecksums() map[wire.NodeID]uint32 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[wire.NodeID]uint32)
	for id, m := range c.members {
		if m.server != nil && !m.down {
			out[id] = m.server.Checksum()
		}
	}
	return out
}

// LogCommonStart returns the lowest index at which every live member's
// log can be compared: the maximum across members of the first index each
// one still retains (anchor+1 for a member whose log was reset by a
// snapshot install, since nothing below the anchor exists there). Under
// the bounded-log lifecycle, log-equality invariants must start here —
// comparing from index 1 would mix purged and retained prefixes.
func (c *Cluster) LogCommonStart() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	from := uint64(1)
	for _, m := range c.members {
		if m.down {
			continue
		}
		var first, anchor uint64
		switch {
		case m.server != nil:
			first = m.server.Log().FirstIndex()
			anchor = m.server.Log().Anchor().Index
		case m.tailer != nil:
			first = m.tailer.Log().FirstIndex()
			anchor = m.tailer.Log().Anchor().Index
		default:
			continue
		}
		if first == 0 {
			// Empty log: entries begin just above the anchor (index 1 when
			// the member has never installed a snapshot).
			first = anchor + 1
		}
		if first > from {
			from = first
		}
	}
	return from
}

// LogChecksums returns per-member replicated-log checksums starting at
// from (the log-equality invariant of §A.1). All members, including
// logtailers, participate.
func (c *Cluster) LogChecksums(from uint64) (map[wire.NodeID]uint32, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[wire.NodeID]uint32)
	for id, m := range c.members {
		if m.down {
			continue
		}
		var sum uint32
		var err error
		switch {
		case m.server != nil:
			sum, err = m.server.Log().Checksum(from)
		case m.tailer != nil:
			sum, err = m.tailer.Log().Checksum(from)
		default:
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: checksum %s: %w", id, err)
		}
		out[id] = sum
	}
	return out, nil
}

// Close shuts every member down and, if the cluster owns them, the
// network.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.node != nil {
			m.node.Stop()
		}
		if m.server != nil {
			m.server.Close()
		}
		if m.tailer != nil {
			m.tailer.Close()
		}
	}
	if c.ownsNet {
		c.net.Close()
	}
}

// PaperTopology builds the §6.1 evaluation topology: a primary-capable
// MySQL with two logtailers in the primary region, nFollowers follower
// regions each with a MySQL voter and two logtailers, and nLearners
// learner MySQLs spread over the follower regions.
func PaperTopology(nFollowers, nLearners int) []MemberSpec {
	var specs []MemberSpec
	addRegion := func(r int) {
		region := wire.Region(fmt.Sprintf("region-%d", r))
		specs = append(specs,
			MemberSpec{ID: wire.NodeID(fmt.Sprintf("mysql-%d", r)), Region: region, Kind: KindMySQL, Voter: true},
			MemberSpec{ID: wire.NodeID(fmt.Sprintf("lt-%d-0", r)), Region: region, Kind: KindLogtailer},
			MemberSpec{ID: wire.NodeID(fmt.Sprintf("lt-%d-1", r)), Region: region, Kind: KindLogtailer},
		)
	}
	for r := 0; r <= nFollowers; r++ {
		addRegion(r)
	}
	for l := 0; l < nLearners; l++ {
		region := wire.Region(fmt.Sprintf("region-%d", 1+l%max(nFollowers, 1)))
		specs = append(specs, MemberSpec{
			ID:     wire.NodeID(fmt.Sprintf("learner-%d", l)),
			Region: region,
			Kind:   KindMySQL,
			Voter:  false,
		})
	}
	return specs
}
