package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"myraft/internal/raft"
	"myraft/internal/readpath"
)

func TestReadLevelsEndToEnd(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	res, err := client.Write(ctx, "k", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}

	// Linearizable: must observe the committed write.
	lr, err := client.ReadLinearizable(ctx, "k")
	if err != nil {
		t.Fatalf("linearizable: %v", err)
	}
	if !lr.Found || string(lr.Value) != "v1" || lr.Index < res.OpID.Index {
		t.Fatalf("linearizable read = %+v, want v1 at >= %d", lr, res.OpID.Index)
	}

	// Lease: once the leader holds its lease, the read is served locally
	// (no fallback) and observes the write.
	waitFor(t, "leader lease", func() bool {
		l := c.Leader()
		return l != nil && l.Node().Status().LeaseHeld
	})
	le, err := client.ReadLease(ctx, "k")
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if !le.Found || string(le.Value) != "v1" {
		t.Fatalf("lease read = %+v", le)
	}
	if le.FellBack {
		t.Fatal("lease read fell back despite held lease")
	}

	// Session: the follower mysql-1 serves the client's own write once its
	// applier passes the session token.
	se, err := client.ReadSession(ctx, "mysql-1", "k")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if !se.Found || string(se.Value) != "v1" {
		t.Fatalf("session read = %+v", se)
	}
	if se.Level != readpath.LevelSession {
		t.Fatalf("session level = %v", se.Level)
	}

	m := c.ReadMetrics()
	if m.Linearizable.Count() == 0 || m.Lease.Count() == 0 || m.Session.Count() == 0 {
		t.Fatalf("metrics missing observations: %s", m)
	}
}

func TestSessionReadNeverMissesOwnWrite(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Write-then-follower-read in a tight loop: the session token must
	// make every read observe the immediately preceding write even though
	// the follower applies asynchronously.
	for i := 0; i < 20; i++ {
		val := []byte{byte('a' + i)}
		if _, err := client.Write(ctx, "counter", val); err != nil {
			t.Fatal(err)
		}
		res, err := client.ReadSession(ctx, "mysql-1", "counter")
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Value[0] != val[0] {
			t.Fatalf("iteration %d: session read %q, want %q", i, res.Value, val)
		}
	}
}

// TestStaleLeaderLeaseRejectedEndToEnd is the ISSUE's required scenario at
// the cluster level: partition the leader, elect a new one, write through
// it, and verify (a) the old leader's LeaseRead stops serving once its
// lease drains, and (b) ReadIndex via the new leader returns the fresh
// write while the cluster-level ReadLease routes to the new leader.
func TestStaleLeaderLeaseRejectedEndToEnd(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := client.Write(ctx, "k", []byte("old")); err != nil {
		t.Fatal(err)
	}

	// Partition the current leader (mysql-0 and its region-0 logtailers
	// stay connected to each other; region-0 is cut from region-1... too
	// coarse). Cut just the leader node from everyone instead.
	oldLeader := c.Leader()
	if oldLeader == nil {
		t.Fatal("no leader")
	}
	oldID := oldLeader.Spec.ID
	for _, m := range c.Members() {
		if m.Spec.ID != oldID {
			c.Net().Partition(oldID, m.Spec.ID)
		}
	}

	// Elect mysql-1 (other region; still has quorum: 5 of 6 voters).
	c.Member("mysql-1").Node().CampaignNow()
	waitFor(t, "new leader", func() bool {
		l := c.Leader()
		return l != nil && l.Spec.ID != oldID && l.Spec.Kind == KindMySQL
	})
	if err := c.WaitForPrimary(ctx, "mysql-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(ctx, "k", []byte("new")); err != nil {
		t.Fatal(err)
	}

	// (a) The deposed leader's lease drains; direct LeaseRead on its node
	// is rejected, so it can never serve the stale "old" value.
	oldNode := oldLeader.Node()
	waitFor(t, "old leader lease rejected", func() bool {
		_, err := oldNode.LeaseRead()
		return errors.Is(err, raft.ErrLeaseExpired) || errors.Is(err, raft.ErrNotLeader)
	})

	// (b) Linearizable and lease reads through the cluster route to the
	// new leader and observe the fresh write.
	lr, err := client.ReadLinearizable(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(lr.Value) != "new" {
		t.Fatalf("linearizable read after failover = %q, want new", lr.Value)
	}
	le, err := client.ReadLease(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(le.Value) != "new" {
		t.Fatalf("lease read after failover = %q, want new", le.Value)
	}

	c.Net().HealAll()
}

func TestSessionTokenAccumulates(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if !client.SessionToken().LastWrite.IsZero() {
		t.Fatal("fresh client has a non-zero session token")
	}
	res, err := client.Write(ctx, "a", []byte("1"))
	if err != nil {
		t.Fatal(err)
	}
	if tok := client.SessionToken(); tok.LastWrite != res.OpID {
		t.Fatalf("token = %v, want %v", tok.LastWrite, res.OpID)
	}
}
