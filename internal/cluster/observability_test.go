package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"myraft/internal/trace"
)

// stageCounts sums per-stage write-path observations across every up
// member's registry.
func stageCounts(c *Cluster) map[trace.Stage]int {
	out := make(map[trace.Stage]int)
	for _, mr := range c.MemberRegistries() {
		hists := mr.Reg.Histograms()
		for _, s := range trace.Stages() {
			if h := hists[trace.HistogramName(s)]; h != nil {
				out[s] += h.Count()
			}
		}
	}
	return out
}

// TestWritePathTracesAllSevenStages is the acceptance check for the
// trace layer: a written transaction must produce nonzero observations
// in every stage of the taxonomy, aggregated cluster-wide. The primary
// contributes propose/append/fsync/replicate/commit/engine_commit; the
// replica's applier contributes apply (and its own engine_commit).
func TestWritePathTracesAllSevenStages(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "replica convergence", func() bool {
		sums := c.EngineChecksums()
		return len(sums) == 2 && sums["mysql-0"] == sums["mysql-1"]
	})
	waitFor(t, "all seven stages observed", func() bool {
		counts := stageCounts(c)
		for _, s := range trace.Stages() {
			if counts[s] == 0 {
				return false
			}
		}
		return true
	})

	// The primary's slow-op journal recorded finished spans with full
	// stage breakdowns.
	var journaled int
	for _, mr := range c.MemberRegistries() {
		if mr.Tracer == nil {
			continue
		}
		for _, op := range mr.Tracer.Journal().Top() {
			journaled++
			if op.Total <= 0 {
				t.Fatalf("journal entry %q has non-positive total %v", op.Op, op.Total)
			}
		}
	}
	if journaled == 0 {
		t.Fatal("no slow ops journaled despite sampled writes")
	}
}

// TestMemberRegistriesRefreshGauges checks the scrape-time refresh:
// raft cursors, binlog I/O totals, and applier state land in each up
// member's registry.
func TestMemberRegistriesRefreshGauges(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := client.Write(ctx, fmt.Sprintf("g%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	regs := c.MemberRegistries()
	if len(regs) != len(smallTopology()) {
		t.Fatalf("got %d registries, want %d", len(regs), len(smallTopology()))
	}
	var sawLeader, sawApplier bool
	for _, mr := range regs {
		snap := mr.Reg.Snapshot()
		if snap["raft_commit_index"] <= 0 {
			t.Fatalf("%s: raft_commit_index = %d, want > 0", mr.ID, snap["raft_commit_index"])
		}
		if snap["binlog_appends"] <= 0 {
			t.Fatalf("%s: binlog_appends = %d, want > 0", mr.ID, snap["binlog_appends"])
		}
		if snap["raft_is_leader"] == 1 {
			sawLeader = true
		}
		if strings.HasPrefix(string(mr.ID), "mysql-") {
			if _, ok := snap["apply_workers"]; !ok {
				t.Fatalf("%s: MySQL member registry missing apply_workers", mr.ID)
			}
			sawApplier = true
		}
	}
	if !sawLeader {
		t.Fatal("no member reports raft_is_leader=1")
	}
	if !sawApplier {
		t.Fatal("no MySQL member registry seen")
	}
}

// TestRegistriesSurviveCrashRestart: a member's registry and trace
// history are member-lifetime, not process-lifetime — crash/restart
// must not reset them.
func TestRegistriesSurviveCrashRestart(t *testing.T) {
	c := bootCluster(t, testOptions(t, nil), smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := client.Write(ctx, "pre", []byte("1")); err != nil {
		t.Fatal(err)
	}

	m := c.Member("mysql-1")
	before := m.Metrics()
	if before == nil {
		t.Fatal("member has no registry")
	}
	if err := c.Crash("mysql-1"); err != nil {
		t.Fatal(err)
	}
	// Crashed members are excluded from the scrape set.
	for _, mr := range c.MemberRegistries() {
		if mr.ID == "mysql-1" {
			t.Fatal("crashed member still listed in MemberRegistries")
		}
	}
	if err := c.Restart("mysql-1"); err != nil {
		t.Fatal(err)
	}
	if m.Metrics() != before {
		t.Fatal("restart replaced the member registry")
	}
	waitFor(t, "restarted member rejoins scrape set", func() bool {
		for _, mr := range c.MemberRegistries() {
			if mr.ID == "mysql-1" {
				return true
			}
		}
		return false
	})
}

// TestTraceSamplingDisabled: a negative TraceSampleEvery turns tracing
// off entirely — no tracer, no write-path histograms.
func TestTraceSamplingDisabled(t *testing.T) {
	opts := testOptions(t, nil)
	opts.TraceSampleEvery = -1
	c := bootCluster(t, opts, smallTopology())
	client := c.NewClient(0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := client.Write(ctx, "x", []byte("y")); err != nil {
		t.Fatal(err)
	}
	for _, mr := range c.MemberRegistries() {
		if mr.Tracer != nil {
			t.Fatalf("%s: tracer present despite TraceSampleEvery=-1", mr.ID)
		}
		for name := range mr.Reg.Histograms() {
			if strings.HasPrefix(name, "writepath_") {
				t.Fatalf("%s: unexpected write-path histogram %q", mr.ID, name)
			}
		}
	}
}
