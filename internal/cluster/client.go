package cluster

import (
	"context"
	"errors"
	"time"

	"myraft/internal/opid"
)

// Client is a simulated database client: it resolves the primary through
// service discovery, submits writes, and retries through failovers. The
// configured RTT stands in for the client↔primary network distance of the
// paper's production evaluation (~10ms, §6.1); sysbench-style runs use
// RTT 0 (clients co-located with the primary).
type Client struct {
	c *Cluster
	// RTT is the simulated client-to-primary round trip added to every
	// attempt.
	RTT time.Duration
	// RetryInterval paces re-resolution when no primary is available.
	RetryInterval time.Duration
}

// NewClient creates a client for the replicaset with the given simulated
// round-trip time.
func (c *Cluster) NewClient(rtt time.Duration) *Client {
	return &Client{c: c, RTT: rtt, RetryInterval: 2 * time.Millisecond}
}

// WriteResult reports one completed write.
type WriteResult struct {
	OpID    opid.OpID
	Latency time.Duration
	// Retries counts failed attempts before success (0 in steady state).
	Retries int
}

// Write upserts key=value on the current primary, retrying across
// failovers until ctx expires. Latency covers the full client experience
// including retries — this is what the paper's downtime and
// commit-latency metrics observe.
func (cl *Client) Write(ctx context.Context, key string, value []byte) (WriteResult, error) {
	start := time.Now()
	retries := 0
	for {
		srv, _, ok := cl.c.primaryServer()
		if ok {
			if cl.RTT > 0 {
				time.Sleep(cl.RTT / 2)
			}
			op, err := srv.Set(ctx, key, value)
			if cl.RTT > 0 {
				time.Sleep(cl.RTT / 2)
			}
			if err == nil {
				return WriteResult{OpID: op, Latency: time.Since(start), Retries: retries}, nil
			}
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return WriteResult{}, err
			}
		}
		retries++
		select {
		case <-ctx.Done():
			return WriteResult{}, ctx.Err()
		case <-time.After(cl.RetryInterval):
		}
	}
}

// TryWrite performs a single attempt with no retry, for workloads that
// account failed writes as downtime themselves.
func (cl *Client) TryWrite(ctx context.Context, key string, value []byte) (WriteResult, error) {
	start := time.Now()
	srv, _, ok := cl.c.primaryServer()
	if !ok {
		return WriteResult{}, errors.New("cluster: no primary published")
	}
	if cl.RTT > 0 {
		time.Sleep(cl.RTT / 2)
	}
	op, err := srv.Set(ctx, key, value)
	if cl.RTT > 0 {
		time.Sleep(cl.RTT / 2)
	}
	if err != nil {
		return WriteResult{}, err
	}
	return WriteResult{OpID: op, Latency: time.Since(start)}, nil
}

// Read resolves the primary and reads key from it (read-your-writes).
func (cl *Client) Read(ctx context.Context, key string) ([]byte, bool, error) {
	for {
		srv, _, ok := cl.c.primaryServer()
		if ok {
			v, found := srv.Read(key)
			return v, found, nil
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-time.After(cl.RetryInterval):
		}
	}
}
