package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"myraft/internal/opid"
	"myraft/internal/readpath"
	"myraft/internal/wire"
)

// Client is a simulated database client: it resolves the primary through
// service discovery, submits writes, and retries through failovers. The
// configured RTT stands in for the client↔primary network distance of the
// paper's production evaluation (~10ms, §6.1); sysbench-style runs use
// RTT 0 (clients co-located with the primary).
type Client struct {
	c *Cluster
	// RTT is the simulated client-to-primary round trip added to every
	// attempt.
	RTT time.Duration
	// RetryInterval paces re-resolution when no primary is available.
	RetryInterval time.Duration

	// tokMu guards the session token accumulated from this client's
	// writes (the GTID-set a MySQL session would carry).
	tokMu   sync.Mutex
	session readpath.Token
}

// NewClient creates a client for the replicaset with the given simulated
// round-trip time.
func (c *Cluster) NewClient(rtt time.Duration) *Client {
	return &Client{c: c, RTT: rtt, RetryInterval: 2 * time.Millisecond}
}

// WriteResult reports one completed write.
type WriteResult struct {
	OpID    opid.OpID
	Latency time.Duration
	// Retries counts failed attempts before success (0 in steady state).
	Retries int
}

// Write upserts key=value on the current primary, retrying across
// failovers until ctx expires. Latency covers the full client experience
// including retries — this is what the paper's downtime and
// commit-latency metrics observe.
func (cl *Client) Write(ctx context.Context, key string, value []byte) (WriteResult, error) {
	start := time.Now()
	retries := 0
	for {
		srv, _, ok := cl.c.primaryServer()
		if ok {
			if cl.RTT > 0 {
				time.Sleep(cl.RTT / 2)
			}
			op, err := srv.Set(ctx, key, value)
			if cl.RTT > 0 {
				time.Sleep(cl.RTT / 2)
			}
			if err == nil {
				cl.observeWrite(op)
				return WriteResult{OpID: op, Latency: time.Since(start), Retries: retries}, nil
			}
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return WriteResult{}, err
			}
		}
		retries++
		select {
		case <-ctx.Done():
			return WriteResult{}, ctx.Err()
		case <-time.After(cl.RetryInterval):
		}
	}
}

// TryWrite performs a single attempt with no retry, for workloads that
// account failed writes as downtime themselves.
func (cl *Client) TryWrite(ctx context.Context, key string, value []byte) (WriteResult, error) {
	start := time.Now()
	srv, _, ok := cl.c.primaryServer()
	if !ok {
		return WriteResult{}, errors.New("cluster: no primary published")
	}
	if cl.RTT > 0 {
		time.Sleep(cl.RTT / 2)
	}
	op, err := srv.Set(ctx, key, value)
	if cl.RTT > 0 {
		time.Sleep(cl.RTT / 2)
	}
	if err != nil {
		return WriteResult{}, err
	}
	cl.observeWrite(op)
	return WriteResult{OpID: op, Latency: time.Since(start)}, nil
}

// observeWrite folds a committed write into the session token.
func (cl *Client) observeWrite(op opid.OpID) {
	cl.tokMu.Lock()
	cl.session.Observe(op)
	cl.tokMu.Unlock()
}

// SessionToken returns the client's current session token: the OpID of
// its newest committed write, carried into session reads.
func (cl *Client) SessionToken() readpath.Token {
	cl.tokMu.Lock()
	defer cl.tokMu.Unlock()
	return cl.session
}

// Read resolves the published primary and reads key from its local
// engine. This is a LOCAL read: it usually observes the client's own
// writes (the primary applied them), but a deposed-but-still-published
// primary can serve stale data. Use ReadLinearizable / ReadLease /
// ReadSession when the consistency level matters.
func (cl *Client) Read(ctx context.Context, key string) ([]byte, bool, error) {
	for {
		srv, _, ok := cl.c.primaryServer()
		if ok {
			v, found := srv.Read(key)
			return v, found, nil
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-time.After(cl.RetryInterval):
		}
	}
}

// ReadLinearizable serves a linearizable read from the leader (ReadIndex
// protocol), simulating the client round trip like Write does.
func (cl *Client) ReadLinearizable(ctx context.Context, key string) (readpath.Result, error) {
	return cl.timedRead(func() (readpath.Result, error) {
		return cl.c.ReadLinearizable(ctx, key)
	})
}

// ReadLease serves a lease read from the leader, falling back to
// ReadIndex when the lease is unsafe.
func (cl *Client) ReadLease(ctx context.Context, key string) (readpath.Result, error) {
	return cl.timedRead(func() (readpath.Result, error) {
		return cl.c.ReadLease(ctx, key)
	})
}

// ReadSession serves a read-your-writes read from the named member
// (typically a follower replica near the client), gated on this client's
// session token.
func (cl *Client) ReadSession(ctx context.Context, id wire.NodeID, key string) (readpath.Result, error) {
	return cl.timedRead(func() (readpath.Result, error) {
		return cl.c.ReadAtSession(ctx, id, cl.SessionToken(), key)
	})
}

// timedRead wraps a read with the simulated client RTT.
func (cl *Client) timedRead(fn func() (readpath.Result, error)) (readpath.Result, error) {
	if cl.RTT > 0 {
		time.Sleep(cl.RTT / 2)
	}
	res, err := fn()
	if cl.RTT > 0 {
		time.Sleep(cl.RTT / 2)
	}
	return res, err
}
