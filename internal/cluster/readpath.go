package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"myraft/internal/raft"
	"myraft/internal/readpath"
	"myraft/internal/wire"
)

// Read routing: the cluster-level entry points to the three read
// consistency levels of internal/readpath. Linearizable and lease reads
// resolve the Raft leader (they are leader protocols); session reads
// target an explicit member — typically a follower replica — and gate on
// the caller's session token instead of leadership.

// ReadMetrics returns the replicaset-wide read-path metrics sink shared
// by every member's reader.
func (c *Cluster) ReadMetrics() *readpath.Metrics { return c.readMetrics }

// readerFor builds a reader over one MySQL member's stack.
func (c *Cluster) readerFor(m *Member) (*readpath.Reader, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if m == nil || m.down || m.server == nil || m.node == nil {
		return nil, fmt.Errorf("cluster: member unavailable for reads")
	}
	return readpath.NewReader(m.node, m.server, c.readMetrics).SetWitness(c.opts.ReadWitness), nil
}

// leaderRead resolves the leader and serves one read through fn, retrying
// through leadership changes until ctx expires: a read that raced a
// failover is re-routed to the new leader rather than surfaced as an
// error, matching what a client-side primary resolver would do.
func (c *Cluster) leaderRead(ctx context.Context, fn func(*readpath.Reader) (readpath.Result, error)) (readpath.Result, error) {
	for {
		if m := c.Leader(); m != nil && m.Spec.Kind == KindMySQL {
			r, err := c.readerFor(m)
			if err == nil {
				res, err := fn(r)
				if err == nil {
					return res, nil
				}
				if !errors.Is(err, raft.ErrNotLeader) && !errors.Is(err, raft.ErrLeadershipLost) {
					return readpath.Result{}, err
				}
				// Deposed mid-read; re-resolve.
			}
		}
		select {
		case <-ctx.Done():
			return readpath.Result{}, fmt.Errorf("cluster: linearizable read: %w", ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// ReadLinearizable serves a linearizable read from the current leader via
// the ReadIndex protocol (one quorum round plus applier wait).
func (c *Cluster) ReadLinearizable(ctx context.Context, key string) (readpath.Result, error) {
	return c.leaderRead(ctx, func(r *readpath.Reader) (readpath.Result, error) {
		return r.ReadLinearizable(ctx, key)
	})
}

// ReadLease serves a leader-local read under the leader lease, falling
// back to ReadIndex when the lease is unsafe.
func (c *Cluster) ReadLease(ctx context.Context, key string) (readpath.Result, error) {
	return c.leaderRead(ctx, func(r *readpath.Reader) (readpath.Result, error) {
		return r.ReadLease(ctx, key)
	})
}

// ReadAtSession serves a read-your-writes read from the named MySQL
// member (typically a follower replica), blocking until that member has
// applied the session token's last write.
func (c *Cluster) ReadAtSession(ctx context.Context, id wire.NodeID, tok readpath.Token, key string) (readpath.Result, error) {
	r, err := c.readerFor(c.Member(id))
	if err != nil {
		return readpath.Result{}, fmt.Errorf("cluster: session read at %s: %w", id, err)
	}
	return r.ReadSession(ctx, tok, key)
}
