// Package shadow implements MyShadow-style testing (§5.1): a
// production-representative workload runs against an isolated replicaset
// while the tester repeatedly injects failures (leader crashes) or drives
// functional operations (graceful transfers, membership churn), and
// continuously verifies correctness by comparing engine and log checksums
// across the ring.
package shadow

import (
	"context"
	"fmt"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/metrics"
	"myraft/internal/wire"
	"myraft/internal/workload"
)

// Config tunes a shadow-testing session.
type Config struct {
	// Rounds is the number of injection cycles.
	Rounds int
	// Clients is the background workload's concurrency.
	Clients int
	// SettleTimeout bounds post-injection convergence waits.
	SettleTimeout time.Duration
	// RoundPause is how long the workload runs undisturbed between
	// injection rounds.
	RoundPause time.Duration
}

func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 5
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.SettleTimeout == 0 {
		c.SettleTimeout = 30 * time.Second
	}
	if c.RoundPause == 0 {
		c.RoundPause = 200 * time.Millisecond
	}
	return c
}

// Report summarizes a session.
type Report struct {
	Rounds int
	// Downtime is the client-observed write-unavailability per round.
	Downtime *metrics.Histogram
	// Writes is the number of successful workload writes.
	Writes int
	// ChecksumFailures counts rounds where members diverged.
	ChecksumFailures int
}

// Tester drives shadow testing on one cluster.
type Tester struct {
	c   *cluster.Cluster
	cfg Config
}

// New creates a tester.
func New(c *cluster.Cluster, cfg Config) *Tester {
	return &Tester{c: c, cfg: cfg.withDefaults()}
}

// driver adapts the cluster client for the workload generator.
func (t *Tester) driver() workload.Driver {
	client := t.c.NewClient(0)
	return workload.DriverFunc(func(ctx context.Context, key string, value []byte) (time.Duration, error) {
		res, err := client.TryWrite(ctx, key, value)
		if err != nil {
			return 0, err
		}
		return res.Latency, nil
	})
}

// RunFailureInjection repeatedly crashes the current primary under load,
// waits for failover, restarts the crashed member, and verifies
// convergence (§5.1 failure injection testing).
func (t *Tester) RunFailureInjection(ctx context.Context) (*Report, error) {
	report := &Report{Downtime: metrics.NewHistogram()}
	wctx, cancelWorkload := context.WithCancel(ctx)
	defer cancelWorkload()
	resCh := make(chan *workload.Result, 1)
	go func() {
		resCh <- workload.Run(wctx, t.driver(), workload.Config{
			Clients:      t.cfg.Clients,
			RetryOnError: true,
		})
	}()

	for round := 0; round < t.cfg.Rounds; round++ {
		primary, err := t.c.AnyPrimary(ctx)
		if err != nil {
			return report, err
		}
		crashed := primary.Spec.ID
		start := time.Now()
		if err := t.c.Crash(crashed); err != nil {
			return report, err
		}
		next, err := t.c.AnyPrimary(ctx)
		if err != nil {
			return report, fmt.Errorf("shadow: round %d: no failover: %w", round, err)
		}
		report.Downtime.Observe(time.Since(start))
		if next.Spec.ID == crashed {
			return report, fmt.Errorf("shadow: round %d: crashed primary still published", round)
		}
		if err := t.c.Restart(crashed); err != nil {
			return report, err
		}
		report.Rounds++
		// Let the workload make progress and the rejoiner catch up
		// before the next injection.
		select {
		case <-ctx.Done():
			return report, ctx.Err()
		case <-time.After(t.cfg.RoundPause):
		}
	}

	cancelWorkload()
	wres := <-resCh
	report.Writes = wres.Latency.Count()

	if err := t.verifyConvergence(ctx); err != nil {
		report.ChecksumFailures++
		return report, err
	}
	return report, nil
}

// RunFunctional repeatedly transfers leadership between MySQL voters and
// churns membership under load (§5.1 functional testing).
func (t *Tester) RunFunctional(ctx context.Context) (*Report, error) {
	report := &Report{Downtime: metrics.NewHistogram()}
	wctx, cancelWorkload := context.WithCancel(ctx)
	defer cancelWorkload()
	resCh := make(chan *workload.Result, 1)
	go func() {
		resCh <- workload.Run(wctx, t.driver(), workload.Config{
			Clients:      t.cfg.Clients,
			RetryOnError: true,
		})
	}()

	targets := t.mysqlVoters()
	if len(targets) < 2 {
		cancelWorkload()
		<-resCh
		return report, fmt.Errorf("shadow: need at least 2 MySQL voters")
	}
	for round := 0; round < t.cfg.Rounds; round++ {
		primary, err := t.c.AnyPrimary(ctx)
		if err != nil {
			return report, err
		}
		var target wire.NodeID
		for _, id := range targets {
			if id != primary.Spec.ID {
				target = id
				break
			}
		}
		// A graceful transfer can time out transiently when the host is
		// CPU-starved (the target's takeover election loses the race with
		// the transfer deadline); production tooling retries, so the
		// tester does too. A timed-out attempt may still complete after
		// the error returns, so each retry first checks whether
		// leadership already landed on the target.
		start := time.Now()
		err = t.c.TransferLeadership(target)
		for attempt := 0; err != nil && attempt < 2; attempt++ {
			if p, perr := t.c.AnyPrimary(ctx); perr == nil && p.Spec.ID == target {
				err = nil
				break
			}
			err = t.c.TransferLeadership(target)
		}
		if err != nil {
			return report, fmt.Errorf("shadow: round %d: transfer: %w", round, err)
		}
		if err := t.c.WaitForPrimary(ctx, target); err != nil {
			return report, err
		}
		report.Downtime.Observe(time.Since(start))
		report.Rounds++

		// Membership churn: add and remove a learner.
		leader := t.c.Leader()
		if leader == nil {
			continue
		}
		learnerID := wire.NodeID(fmt.Sprintf("shadow-learner-%d", round))
		if op, err := leader.Node().AddMember(wire.Member{ID: learnerID, Region: leader.Spec.Region}); err == nil {
			waitCtx, cancel := context.WithTimeout(ctx, t.cfg.SettleTimeout)
			leader.Node().WaitCommitted(waitCtx, op.Index)
			cancel()
			if op2, err := leader.Node().RemoveMember(learnerID); err == nil {
				waitCtx, cancel := context.WithTimeout(ctx, t.cfg.SettleTimeout)
				leader.Node().WaitCommitted(waitCtx, op2.Index)
				cancel()
			}
		}
	}

	cancelWorkload()
	wres := <-resCh
	report.Writes = wres.Latency.Count()
	if err := t.verifyConvergence(ctx); err != nil {
		report.ChecksumFailures++
		return report, err
	}
	return report, nil
}

func (t *Tester) mysqlVoters() []wire.NodeID {
	var out []wire.NodeID
	for _, m := range t.c.Members() {
		if m.Spec.Kind == cluster.KindMySQL && m.Spec.Voter {
			out = append(out, m.Spec.ID)
		}
	}
	return out
}

// verifyConvergence waits for the ring to quiesce, then compares log and
// engine checksums across members (§5.1's correctness checks).
func (t *Tester) verifyConvergence(ctx context.Context) error {
	deadline := time.Now().Add(t.cfg.SettleTimeout)
	var lastErr error
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		lastErr = t.checkOnce()
		if lastErr == nil {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("shadow: convergence check failed: %w", lastErr)
}

func (t *Tester) checkOnce() error {
	// Log equality across every live member, from the oldest index still
	// present everywhere.
	from := uint64(1)
	for _, m := range t.c.Members() {
		if m.IsDown() {
			continue
		}
		var first uint64
		switch {
		case m.Server() != nil:
			first = m.Server().Log().FirstIndex()
		case m.Tailer() != nil:
			first = m.Tailer().Log().FirstIndex()
		}
		if first > from {
			from = first
		}
	}
	logSums, err := t.c.LogChecksums(from)
	if err != nil {
		return err
	}
	var want uint32
	started := false
	for id, sum := range logSums {
		if !started {
			want = sum
			started = true
			continue
		}
		if sum != want {
			return fmt.Errorf("log checksum mismatch at %s", id)
		}
	}
	// Engine equality across MySQL members, but only when their appliers
	// have caught up to the same point.
	var tails []uint64
	for _, m := range t.c.Members() {
		if m.Server() != nil && !m.IsDown() {
			tails = append(tails, m.Server().Engine().LastCommitted().Index)
		}
	}
	for i := 1; i < len(tails); i++ {
		if tails[i] != tails[0] {
			return fmt.Errorf("appliers not settled: %v", tails)
		}
	}
	engSums := t.c.EngineChecksums()
	started = false
	for id, sum := range engSums {
		if !started {
			want = sum
			started = true
			continue
		}
		if sum != want {
			return fmt.Errorf("engine checksum mismatch at %s", id)
		}
	}
	return nil
}
