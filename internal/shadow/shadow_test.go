package shadow

import (
	"context"
	"testing"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/quorum"
	"myraft/internal/raft"
	"myraft/internal/transport"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Options{
		Name: "rs-shadow",
		Dir:  t.TempDir(),
		Raft: raft.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			Strategy:          quorum.SingleRegionDynamic{},
		},
		NetConfig: transport.Config{
			IntraRegion: 200 * time.Microsecond,
			CrossRegion: 2 * time.Millisecond,
		},
	}, cluster.PaperTopology(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Bootstrap(ctx, "mysql-0"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFailureInjectionRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	c := testCluster(t)
	tester := New(c, Config{Rounds: 3, Clients: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	report, err := tester.RunFailureInjection(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Rounds != 3 {
		t.Fatalf("rounds = %d", report.Rounds)
	}
	if report.Downtime.Count() != 3 {
		t.Fatalf("downtime samples = %d", report.Downtime.Count())
	}
	if report.Writes == 0 {
		t.Fatal("workload produced no writes across failovers")
	}
	if report.ChecksumFailures != 0 {
		t.Fatalf("checksum failures = %d", report.ChecksumFailures)
	}
	t.Logf("failure injection: %d writes, downtime %v", report.Writes, report.Downtime)
}

func TestFunctionalRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	c := testCluster(t)
	tester := New(c, Config{Rounds: 3, Clients: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	report, err := tester.RunFunctional(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Rounds != 3 {
		t.Fatalf("rounds = %d", report.Rounds)
	}
	if report.ChecksumFailures != 0 {
		t.Fatalf("checksum failures = %d", report.ChecksumFailures)
	}
	// Graceful transfers are far faster than failovers: sub-second even
	// in the worst round.
	if report.Downtime.Max() > 5*time.Second {
		t.Fatalf("graceful transfer took %v", report.Downtime.Max())
	}
	t.Logf("functional: %d writes, transfer downtime %v", report.Writes, report.Downtime)
}

// TestFailureInjectionSoak hammers the crash/failover/restart cycle to
// hunt for state divergence (the class of bug §5.1's shadow testing was
// built to catch). It runs 12 sessions of 3 rounds each; any checksum
// mismatch or applier stall fails with full ring state.
func TestFailureInjectionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for iter := 0; iter < 12; iter++ {
		c := testCluster(t)
		tester := New(c, Config{Rounds: 3, Clients: 4, RoundPause: 100 * time.Millisecond, SettleTimeout: 10 * time.Second})
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		_, err := tester.RunFailureInjection(ctx)
		cancel()
		if err != nil {
			for _, m := range c.Members() {
				if m.Node() == nil {
					continue
				}
				st := m.Node().Status()
				t.Logf("%s: role=%v term=%d commit=%d last=%v", m.Spec.ID, st.Role, st.Term, st.CommitIndex, st.LastOpID)
				if m.Server() != nil {
					t.Logf("  applier applied=%d err=%v readonly=%v engine=%v",
						m.Server().ApplierLastApplied(), m.Server().ApplierLastError(),
						m.Server().IsReadOnly(), m.Server().Engine().LastCommitted())
				}
			}
			c.Close()
			t.Fatalf("soak iteration %d: %v", iter, err)
		}
		c.Close()
	}
}
