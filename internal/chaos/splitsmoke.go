package chaos

// splitsmoke.go is the online shard-split gate: one runtime starts as a
// single ring, routed writers hammer a fixed key population, a follower
// partition churns and heals, and then the shard splits 1→2 while the
// writers keep going. The checkers assert the split's contract — no
// acknowledged write is lost across the cutover, every key is served by
// exactly the shard the bumped table routes it to, both rings converge,
// and every stale-version rejection the cutover caused was retried to an
// acknowledged write (writers use the retrying client, so a surviving
// rejection would surface as a write error).

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/multiraft"
	"myraft/internal/raft"
	"myraft/internal/transport"
	"myraft/internal/wire"
)

// SplitSmokeConfig parameterizes one split-under-load run. The zero
// value plus a Seed is the CI smoke configuration.
type SplitSmokeConfig struct {
	Seed            int64
	Keys            int           // key population, default 48
	Writers         int           // concurrent routed writers, default 4
	Warmup          time.Duration // pre-split fault window, default 400ms
	ConvergeTimeout time.Duration // default 30s
	Logf            func(format string, args ...any)
}

func (c SplitSmokeConfig) withDefaults() SplitSmokeConfig {
	if c.Keys == 0 {
		c.Keys = 48
	}
	if c.Writers == 0 {
		c.Writers = 4
	}
	if c.Warmup == 0 {
		c.Warmup = 400 * time.Millisecond
	}
	if c.ConvergeTimeout == 0 {
		c.ConvergeTimeout = 30 * time.Second
	}
	return c
}

func (c SplitSmokeConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// SplitSmokeReport is the outcome of one split-under-load run.
type SplitSmokeReport struct {
	Seed         int64
	Writes       int64
	WriteErrs    int64
	RowsMoved    int
	TableVersion uint64
	StaleRejects int64
	FenceWaits   int64
	Violations   []string
}

// Passed reports whether every invariant held.
func (r *SplitSmokeReport) Passed() bool { return len(r.Violations) == 0 }

// RunSplitSmoke executes one split-under-load run: boot a 1-shard
// runtime of three voters, run routed writers through a brief follower
// partition, split online while they write, crash and restart a node
// post-cutover, then check durability, routing, and convergence on both
// rings.
func RunSplitSmoke(cfg SplitSmokeConfig) (*SplitSmokeReport, error) {
	cfg = cfg.withDefaults()
	rep := &SplitSmokeReport{Seed: cfg.Seed}

	rt, err := multiraft.New(multiraft.Options{
		Shards: 1,
		Specs: []cluster.MemberSpec{
			{ID: "n0", Region: "r1", Kind: cluster.KindMySQL, Voter: true},
			{ID: "n1", Region: "r1", Kind: cluster.KindMySQL, Voter: true},
			{ID: "n2", Region: "r1", Kind: cluster.KindMySQL, Voter: true},
		},
		Name: fmt.Sprintf("split-smoke-%d", cfg.Seed),
		Raft: raft.Config{
			HeartbeatInterval: 10 * time.Millisecond,
		},
		NetConfig: transport.Config{
			IntraRegion: 200 * time.Microsecond,
			CrossRegion: 2 * time.Millisecond,
		},
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build split-smoke runtime: %w", err)
	}
	defer rt.Close()

	bctx, bcancel := context.WithTimeout(context.Background(), 15*time.Second)
	err = rt.Bootstrap(bctx)
	bcancel()
	if err != nil {
		return nil, fmt.Errorf("chaos: split-smoke bootstrap: %w", err)
	}

	// Routed writers: each key carries a strictly increasing sequence
	// number, and the acked floor per key is the durability contract.
	var (
		mu        sync.Mutex
		acked     = make(map[string]uint64, cfg.Keys)
		seqs      = make(map[string]uint64, cfg.Keys)
		writes    int64
		writeErrs int64
	)
	keys := make([]string, cfg.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("smoke-key-%d", i)
	}
	client := rt.NewClient(0)
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for wctx.Err() == nil {
				key := keys[rng.Intn(len(keys))]
				mu.Lock()
				seqs[key]++
				seq := seqs[key]
				mu.Unlock()
				ctx, cancel := context.WithTimeout(wctx, 5*time.Second)
				_, err := client.Write(ctx, key, []byte(strconv.FormatUint(seq, 10)))
				cancel()
				mu.Lock()
				if err == nil {
					writes++
					if seq > acked[key] {
						acked[key] = seq
					}
				} else {
					writeErrs++
				}
				mu.Unlock()
				select {
				case <-wctx.Done():
					return
				case <-time.After(time.Millisecond):
				}
			}
		}(w)
	}

	violations := []string{}
	violatef := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	// Warmup faults: partition a follower pair, let writes ride through
	// the degraded quorum, heal before the split (the split itself needs
	// both rings writable, so it runs on a healed network).
	pctx, pcancel := context.WithTimeout(context.Background(), 10*time.Second)
	primary, err := rt.Shard(0).AnyPrimary(pctx)
	pcancel()
	if err != nil {
		wcancel()
		wg.Wait()
		return nil, fmt.Errorf("chaos: split-smoke primary: %w", err)
	}
	var followers []wire.NodeID
	for _, id := range rt.Nodes() {
		if id != primary.Spec.ID {
			followers = append(followers, id)
		}
	}
	rt.Net().Partition(followers[0], followers[1])
	cfg.logf("split-smoke: partition %s <-> %s under load", followers[0], followers[1])
	time.Sleep(cfg.Warmup)
	rt.Net().HealAll()

	// The tentpole moment: split shard 0 while the writers keep going.
	sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
	splitRep, err := rt.Split(sctx, 0)
	scancel()
	if err != nil {
		wcancel()
		wg.Wait()
		return nil, fmt.Errorf("chaos: online split under load: %w", err)
	}
	rep.RowsMoved = splitRep.RowsMoved
	rep.TableVersion = splitRep.TableVersion
	cfg.logf("split-smoke: moved %d rows to shard %d, table v%d",
		splitRep.RowsMoved, splitRep.NewShard, splitRep.TableVersion)

	// Post-cutover fault: crash whichever node led the source shard and
	// bring it back — both rings must re-elect and reconverge.
	cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
	primary, err = rt.Shard(0).AnyPrimary(cctx)
	ccancel()
	if err != nil {
		violatef("post-split: shard 0 has no primary: %v", err)
	} else {
		if err := rt.Crash(primary.Spec.ID); err != nil {
			violatef("harness: crash %s: %v", primary.Spec.ID, err)
		} else {
			cfg.logf("split-smoke: crash %s post-cutover", primary.Spec.ID)
			time.Sleep(200 * time.Millisecond)
			if err := rt.Restart(primary.Spec.ID); err != nil {
				violatef("harness: restart %s: %v", primary.Spec.ID, err)
			}
		}
	}

	wcancel()
	wg.Wait()
	rt.Net().HealAll()

	if rt.Shards() != 2 {
		violatef("runtime hosts %d shards after split, want 2", rt.Shards())
	}
	if v := rt.Router().Version(); v != rep.TableVersion {
		violatef("router at table v%d, split reported v%d", v, rep.TableVersion)
	}

	// Both rings converge: primary, matching logs, matching engines.
	deadline := time.Now().Add(cfg.ConvergeTimeout)
	for s := 0; s < rt.Shards(); s++ {
		c := rt.Shard(wire.ShardID(s))
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		_, err := c.AnyPrimary(ctx)
		cancel()
		if err != nil {
			violatef("shard %d: no primary after split smoke: %v", s, err)
			continue
		}
		for {
			from := c.LogCommonStart()
			sums, serr := c.LogChecksums(from)
			logOK := serr == nil && len(sums) == len(c.Members()) && allEqual(sums)
			esums := c.EngineChecksums()
			engOK := len(esums) > 0 && allEqual(esums)
			if logOK && engOK {
				break
			}
			if time.Now().After(deadline) {
				violatef("shard %d: no convergence within %s: logs=%v (err=%v) engines=%v",
					s, cfg.ConvergeTimeout, sums, serr, esums)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Durability plus routing: every acked key reads back at or above its
	// floor through the routed client, and only through the shard the
	// bumped table names — reading it through the other ring is leakage.
	router := rt.Router()
	for _, key := range keys {
		mu.Lock()
		floor := acked[key]
		mu.Unlock()
		if floor == 0 {
			continue
		}
		home := router.ShardFor(key)
		rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
		res, err := rt.Shard(home).ReadLinearizable(rctx, key)
		rcancel()
		if err != nil {
			violatef("durability: read of %s (acked seq %d) via shard %d failed: %v", key, floor, home, err)
			continue
		}
		if !res.Found {
			violatef("durability: %s lost across split after seq %d was acked", key, floor)
			continue
		}
		if seq, perr := strconv.ParseUint(string(res.Value), 10, 64); perr != nil || seq < floor {
			violatef("durability: %s = %q, below acked seq %d", key, res.Value, floor)
		}
		other := wire.ShardID(1 - int(home))
		octx, ocancel := context.WithTimeout(context.Background(), 10*time.Second)
		ores, oerr := rt.Shard(other).ReadLinearizable(octx, key)
		ocancel()
		if oerr == nil && ores.Found {
			violatef("isolation: %s routed to shard %d but still readable on shard %d", key, home, other)
		}
	}

	mu.Lock()
	rep.Writes, rep.WriteErrs = writes, writeErrs
	mu.Unlock()
	rep.StaleRejects = rt.StaleRejects()
	rep.FenceWaits = rt.FenceWaits()
	rep.Violations = violations
	return rep, nil
}
