package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/wire"
)

// ActionKind discriminates the fault actions a schedule can contain.
type ActionKind int

const (
	// ActCrash hard-crashes Node (torn buffers, off the network).
	ActCrash ActionKind = iota
	// ActRestart recovers Node from disk and rejoins it to the ring.
	ActRestart
	// ActPartition blocks both directions between Node and Peer.
	ActPartition
	// ActPartitionOneWay blocks only Node→Peer: Peer still reaches Node,
	// nothing flows back — the asymmetric partition.
	ActPartitionOneWay
	// ActHealNet removes every network-level partition.
	ActHealNet
	// ActDrop sets Node's outbound message-drop probability to P.
	ActDrop
	// ActDelay makes Node's outbound messages wait up to Dur with
	// probability P before entering the network (also reorders: undelayed
	// traffic overtakes held messages on the FIFO link).
	ActDelay
	// ActDuplicate sets Node's outbound duplication probability to P.
	ActDuplicate
	// ActHealFaults clears Node's transport fault rules and flushes any
	// held messages.
	ActHealFaults
	// ActFsyncStall makes every fsync on Node's log store sleep Dur.
	ActFsyncStall
	// ActFsyncHeal clears Node's log-store faults.
	ActFsyncHeal
	// ActFsyncFail makes Node's fsyncs return an I/O error. The log
	// writer's error is sticky — the node steps down and cannot ack — so
	// the generator always pairs this with a crash and a restart shortly
	// after, modeling a dying disk taking the process with it.
	ActFsyncFail
	// ActSkew sets Node's wall-clock offset to Dur (possibly negative),
	// stressing the lease read path.
	ActSkew
	// ActPurge runs one cluster purge round with retention budget N: the
	// leader advances the purge floor and drives PURGE BINARY LOGS on
	// every live member, so crashed members come back behind the floor
	// and must catch up through snapshot install. The generator also
	// composes this with crash/restart pairs to crash members mid
	// snapshot transfer (the resumable-transfer stress).
	ActPurge
)

func (k ActionKind) String() string {
	switch k {
	case ActCrash:
		return "crash"
	case ActRestart:
		return "restart"
	case ActPartition:
		return "partition"
	case ActPartitionOneWay:
		return "partition-oneway"
	case ActHealNet:
		return "heal-net"
	case ActDrop:
		return "drop"
	case ActDelay:
		return "delay"
	case ActDuplicate:
		return "duplicate"
	case ActHealFaults:
		return "heal-faults"
	case ActFsyncStall:
		return "fsync-stall"
	case ActFsyncHeal:
		return "fsync-heal"
	case ActFsyncFail:
		return "fsync-fail"
	case ActSkew:
		return "skew"
	case ActPurge:
		return "purge"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one timed fault: apply Kind to Node (and Peer for
// partitions) At nanoseconds after the workload starts. P, Dur and N
// carry the kind-specific probability, duration and count parameters.
type Action struct {
	At   time.Duration
	Kind ActionKind
	Node wire.NodeID
	Peer wire.NodeID
	P    float64
	Dur  time.Duration
	// N is ActPurge's retention budget (entries kept below the tail).
	N uint64
}

func (a Action) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %-16s %s", a.At.Round(time.Millisecond), a.Kind, a.Node)
	if a.Peer != "" {
		fmt.Fprintf(&b, "→%s", a.Peer)
	}
	if a.P != 0 {
		fmt.Fprintf(&b, " p=%.2f", a.P)
	}
	if a.Dur != 0 {
		fmt.Fprintf(&b, " d=%s", a.Dur)
	}
	if a.N != 0 {
		fmt.Fprintf(&b, " n=%d", a.N)
	}
	return b.String()
}

// Schedule is a time-ordered fault plan.
type Schedule []Action

func (s Schedule) String() string {
	lines := make([]string, len(s))
	for i, a := range s {
		lines[i] = a.String()
	}
	return strings.Join(lines, "\n")
}

// foreverDown marks a crashed node with no generator-scheduled restart
// (the run's final heal restarts it).
const foreverDown = time.Duration(1<<62 - 1)

// GenerateSchedule derives the full fault plan from cfg as a pure
// function: the same Config (in particular the same Seed) always yields
// the identical Schedule, which is what makes a failing chaos run
// reproducible from its printed seed. The generator tracks which nodes
// it has taken down so at most cfg.MaxDown members are ever crashed at
// once — the cluster keeps a live quorum and the workload can make
// progress between faults.
func GenerateSchedule(cfg Config) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	specs := cluster.PaperTopology(cfg.FollowerRegions, 0)
	var nodes, mysqls []wire.NodeID
	for _, s := range specs {
		nodes = append(nodes, s.ID)
		if s.Kind == cluster.KindMySQL {
			mysqls = append(mysqls, s.ID)
		}
	}

	var sched Schedule
	downUntil := make(map[wire.NodeID]time.Duration)
	isDown := func(id wire.NodeID, t time.Duration) bool { return downUntil[id] > t }
	downCount := func(t time.Duration) int {
		n := 0
		for _, id := range nodes {
			if isDown(id, t) {
				n++
			}
		}
		return n
	}
	up := func(ids []wire.NodeID, t time.Duration) []wire.NodeID {
		out := make([]wire.NodeID, 0, len(ids))
		for _, id := range ids {
			if !isDown(id, t) {
				out = append(out, id)
			}
		}
		return out
	}
	pick := func(ids []wire.NodeID) wire.NodeID { return ids[rng.Intn(len(ids))] }

	var t time.Duration
	for {
		t += 20*time.Millisecond + time.Duration(rng.Int63n(int64(60*time.Millisecond)))
		if t >= cfg.Duration {
			break
		}
		switch rng.Intn(18) {
		case 0: // crash, no scheduled recovery
			if downCount(t) >= cfg.MaxDown {
				continue
			}
			id := pick(up(nodes, t))
			sched = append(sched, Action{At: t, Kind: ActCrash, Node: id})
			downUntil[id] = foreverDown
		case 1, 2: // restart the longest-crashed node
			var down []wire.NodeID
			for _, id := range nodes {
				if downUntil[id] == foreverDown {
					down = append(down, id)
				}
			}
			if len(down) == 0 {
				continue
			}
			sort.Slice(down, func(i, j int) bool { return down[i] < down[j] })
			id := down[0]
			sched = append(sched, Action{At: t, Kind: ActRestart, Node: id})
			delete(downUntil, id)
		case 3:
			a := pick(nodes)
			b := pick(nodes)
			if a == b {
				continue
			}
			sched = append(sched, Action{At: t, Kind: ActPartition, Node: a, Peer: b})
		case 4:
			a := pick(nodes)
			b := pick(nodes)
			if a == b {
				continue
			}
			sched = append(sched, Action{At: t, Kind: ActPartitionOneWay, Node: a, Peer: b})
		case 5, 6:
			sched = append(sched, Action{At: t, Kind: ActHealNet})
		case 7:
			sched = append(sched, Action{
				At: t, Kind: ActDrop, Node: pick(up(nodes, t)),
				P: 0.05 + 0.30*rng.Float64(),
			})
		case 8:
			sched = append(sched, Action{
				At: t, Kind: ActDelay, Node: pick(up(nodes, t)),
				P:   0.10 + 0.40*rng.Float64(),
				Dur: 3*time.Millisecond + time.Duration(rng.Int63n(int64(22*time.Millisecond))),
			})
		case 9:
			sched = append(sched, Action{
				At: t, Kind: ActDuplicate, Node: pick(up(nodes, t)),
				P: 0.05 + 0.25*rng.Float64(),
			})
		case 10, 11:
			sched = append(sched, Action{At: t, Kind: ActHealFaults, Node: pick(nodes)})
		case 12: // fsync stall, auto-healed shortly after
			alive := up(mysqls, t)
			if len(alive) == 0 {
				continue
			}
			id := pick(alive)
			stall := 20*time.Millisecond + time.Duration(rng.Int63n(int64(80*time.Millisecond)))
			heal := t + 100*time.Millisecond + time.Duration(rng.Int63n(int64(150*time.Millisecond)))
			sched = append(sched,
				Action{At: t, Kind: ActFsyncStall, Node: id, Dur: stall},
				Action{At: heal, Kind: ActFsyncHeal, Node: id})
		case 13: // dying disk: sticky fsync error, then crash, then recovery
			alive := up(mysqls, t)
			if downCount(t) >= cfg.MaxDown || len(alive) == 0 {
				continue
			}
			id := pick(alive)
			crashAt := t + 50*time.Millisecond
			restartAt := t + 150*time.Millisecond
			sched = append(sched,
				Action{At: t, Kind: ActFsyncFail, Node: id},
				Action{At: crashAt, Kind: ActCrash, Node: id},
				Action{At: restartAt, Kind: ActRestart, Node: id})
			downUntil[id] = restartAt
		case 14, 15:
			// Offsets stay within ±MaxClockSkew/2 so any pair of members is
			// within the configured bound and lease reads must remain safe.
			half := int64(cfg.maxClockSkew() / 2)
			off := time.Duration(rng.Int63n(2*half+1) - half)
			sched = append(sched, Action{At: t, Kind: ActSkew, Node: pick(up(nodes, t)), Dur: off})
		case 16: // purge round with a small retention budget
			sched = append(sched, Action{
				At: t, Kind: ActPurge, N: uint64(4 + rng.Intn(24)),
			})
		case 17:
			// Crash-while-snapshotting: crash a MySQL member, purge history
			// past it while it is down, restart it (it comes back behind the
			// floor, so the leader starts a snapshot transfer), then crash it
			// again mid-transfer and recover it once more. The transfer must
			// restart or resume idempotently.
			alive := up(mysqls, t)
			if downCount(t) >= cfg.MaxDown || len(alive) == 0 {
				continue
			}
			id := pick(alive)
			purgeAt := t + 30*time.Millisecond
			restart1 := t + 60*time.Millisecond
			crash2 := restart1 + 10*time.Millisecond + time.Duration(rng.Int63n(int64(30*time.Millisecond)))
			restart2 := crash2 + 60*time.Millisecond
			sched = append(sched,
				Action{At: t, Kind: ActCrash, Node: id},
				Action{At: purgeAt, Kind: ActPurge, N: uint64(2 + rng.Intn(8))},
				Action{At: restart1, Kind: ActRestart, Node: id},
				Action{At: crash2, Kind: ActCrash, Node: id},
				Action{At: restart2, Kind: ActRestart, Node: id})
			// Conservatively held down for the whole composite, so the
			// generator's MaxDown accounting stays an upper bound on the
			// replayed down-count at any instant.
			downUntil[id] = restart2
		}
	}

	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched
}
