package chaos

// multishard.go extends the nemesis to the multi-shard runtime: one
// process set hosting several raft rings (internal/multiraft), driven
// through node-level faults — a crash takes every ring on that node down
// at once, a partition cuts every shard's traffic on the link, because
// all shards share one transport endpoint. The checkers then judge each
// shard as its own replicaset (election safety, log matching, durability
// of acknowledged writes) plus the property single-ring chaos cannot
// express: isolation. A key routed to shard S must be readable only
// through S, and the shared demux must never deliver a frame to a shard
// the node does not host (UnknownShardDrops == 0).

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/multiraft"
	"myraft/internal/raft"
	"myraft/internal/transport"
	"myraft/internal/wire"
)

// MultiShardConfig parameterizes one multi-shard chaos run. The zero
// value plus a Seed is the CI smoke configuration: 3 nodes × 4 shards.
type MultiShardConfig struct {
	Seed            int64
	Shards          int           // default 4
	Duration        time.Duration // fault window, default 1.2s
	ConvergeTimeout time.Duration // default 30s
	Logf            func(format string, args ...any)
}

func (c MultiShardConfig) withDefaults() MultiShardConfig {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Duration == 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if c.ConvergeTimeout == 0 {
		c.ConvergeTimeout = 30 * time.Second
	}
	return c
}

func (c MultiShardConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// MultiShardReport is the outcome of one multi-shard chaos run.
type MultiShardReport struct {
	Seed       int64
	Writes     int64
	WriteErrs  int64
	Crashes    int
	Partitions int
	Violations []string
}

// Passed reports whether every invariant held.
func (r *MultiShardReport) Passed() bool { return len(r.Violations) == 0 }

// msHarness is the multi-shard run state: per-(shard, term) leader
// claims from the role-change hook and per-shard acknowledged-write
// floors.
type msHarness struct {
	cfg MultiShardConfig
	rt  *multiraft.Runtime

	mu         sync.Mutex
	leaders    map[wire.ShardID]map[uint64]map[wire.NodeID]bool
	acked      map[wire.ShardID]uint64
	violations []string
	writes     int64
	writeErrs  int64
}

func (h *msHarness) violatef(format string, args ...any) {
	h.mu.Lock()
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

// onRoleChange records leader claims per shard per term; runs on each
// node's event loop, so it only stores and returns.
func (h *msHarness) onRoleChange(shard wire.ShardID, rc raft.RoleChange) {
	if rc.Role != raft.RoleLeader {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	terms := h.leaders[shard]
	if terms == nil {
		terms = make(map[uint64]map[wire.NodeID]bool)
		h.leaders[shard] = terms
	}
	set := terms[rc.Term]
	if set == nil {
		set = make(map[wire.NodeID]bool)
		terms[rc.Term] = set
	}
	set[rc.ID] = true
}

// shardKey finds a key the router sends to the given shard; each shard's
// writer owns exactly one such key, so leakage is checkable per key.
func shardKey(r *multiraft.Router, shard wire.ShardID) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("ms-shard-%d-key-%d", shard, i)
		if r.ShardFor(k) == shard {
			return k
		}
	}
}

// RunMultiShard executes one multi-shard chaos run: boot 3 nodes × N
// shards over the shared coalescing transport, run per-shard writers
// while node crashes, restarts, and partitions play out, then heal and
// check every shard's invariants plus cross-shard isolation.
func RunMultiShard(cfg MultiShardConfig) (*MultiShardReport, error) {
	cfg = cfg.withDefaults()
	h := &msHarness{
		cfg:     cfg,
		leaders: make(map[wire.ShardID]map[uint64]map[wire.NodeID]bool),
		acked:   make(map[wire.ShardID]uint64),
	}
	rep := &MultiShardReport{Seed: cfg.Seed}

	rt, err := multiraft.New(multiraft.Options{
		Shards: cfg.Shards,
		Specs: []cluster.MemberSpec{
			{ID: "n0", Region: "r1", Kind: cluster.KindMySQL, Voter: true},
			{ID: "n1", Region: "r1", Kind: cluster.KindMySQL, Voter: true},
			{ID: "n2", Region: "r1", Kind: cluster.KindMySQL, Voter: true},
		},
		Name: fmt.Sprintf("ms-chaos-%d", cfg.Seed),
		Raft: raft.Config{
			HeartbeatInterval: 10 * time.Millisecond,
		},
		NetConfig: transport.Config{
			IntraRegion: 200 * time.Microsecond,
			CrossRegion: 2 * time.Millisecond,
		},
		Seed:         cfg.Seed,
		OnRoleChange: h.onRoleChange,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build multi-shard runtime: %w", err)
	}
	defer rt.Close()
	h.rt = rt

	bctx, bcancel := context.WithTimeout(context.Background(), 15*time.Second)
	err = rt.Bootstrap(bctx)
	bcancel()
	if err != nil {
		return nil, fmt.Errorf("chaos: multi-shard bootstrap: %w", err)
	}

	// One writer per shard, each owning one shard-routed key and writing
	// strictly increasing sequence numbers — the acked floor is per shard.
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	keys := make([]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		keys[s] = shardKey(rt.Router(), wire.ShardID(s))
		wg.Add(1)
		go func(shard wire.ShardID, key string) {
			defer wg.Done()
			h.writer(wctx, shard, key)
		}(wire.ShardID(s), keys[s])
	}

	// Node-level fault schedule, derived from the seed: crash one node at
	// a time (keeping a 2-of-3 quorum on every shard), partition pairs,
	// heal, repeat until the window closes.
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := rt.Nodes()
	var down wire.NodeID
	start := time.Now()
	for time.Since(start) < cfg.Duration {
		switch op := rng.Intn(4); {
		case op == 0 && down == "":
			id := nodes[rng.Intn(len(nodes))]
			if err := rt.Crash(id); err == nil {
				down = id
				rep.Crashes++
				cfg.logf("ms-chaos: crash %s (all %d shards)", id, cfg.Shards)
			}
		case op == 1 && down != "":
			if err := rt.Restart(down); err != nil {
				h.violatef("harness: restart %s: %v", down, err)
			} else {
				cfg.logf("ms-chaos: restart %s", down)
			}
			down = ""
		case op == 2:
			a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
			if a != b {
				rt.Net().Partition(a, b)
				rep.Partitions++
				cfg.logf("ms-chaos: partition %s <-> %s", a, b)
			}
		default:
			rt.Net().HealAll()
		}
		time.Sleep(time.Duration(50+rng.Intn(150)) * time.Millisecond)
	}

	wcancel()
	wg.Wait()

	// Heal everything before judging convergence.
	rt.Net().HealAll()
	if down != "" {
		if err := rt.Restart(down); err != nil {
			return nil, fmt.Errorf("chaos: final restart of %s: %w", down, err)
		}
	}

	h.checkShards(keys)
	h.checkIsolation(keys)
	h.checkElectionSafety()

	h.mu.Lock()
	rep.Writes, rep.WriteErrs = h.writes, h.writeErrs
	rep.Violations = append([]string(nil), h.violations...)
	h.mu.Unlock()
	return rep, nil
}

func (h *msHarness) writer(ctx context.Context, shard wire.ShardID, key string) {
	client := h.rt.Shard(shard).NewClient(0)
	var seq uint64
	for ctx.Err() == nil {
		seq++
		wctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
		_, err := client.TryWrite(wctx, key, []byte(strconv.FormatUint(seq, 10)))
		cancel()
		h.mu.Lock()
		if err == nil {
			h.writes++
			if seq > h.acked[shard] {
				h.acked[shard] = seq
			}
		} else {
			h.writeErrs++
		}
		h.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// checkShards judges each shard as its own replicaset: a primary
// re-emerges, logs and engines reconverge (log matching over full
// checksums), and the shard's acknowledged write floor survives a
// linearizable read.
func (h *msHarness) checkShards(keys []string) {
	deadline := time.Now().Add(h.cfg.ConvergeTimeout)
	for s := 0; s < h.cfg.Shards; s++ {
		shard := wire.ShardID(s)
		c := h.rt.Shard(shard)
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		_, err := c.AnyPrimary(ctx)
		cancel()
		if err != nil {
			h.violatef("shard %d: no primary after full heal: %v", shard, err)
			continue
		}
		members := len(c.Members())
		for {
			from := c.LogCommonStart()
			sums, serr := c.LogChecksums(from)
			logOK := serr == nil && len(sums) == members && allEqual(sums)
			esums := c.EngineChecksums()
			engOK := len(esums) > 0 && allEqual(esums)
			if logOK && engOK {
				break
			}
			if time.Now().After(deadline) {
				h.violatef("shard %d: no convergence within %s: logs=%v (err=%v) engines=%v",
					shard, h.cfg.ConvergeTimeout, sums, serr, esums)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}

		h.mu.Lock()
		floor := h.acked[shard]
		h.mu.Unlock()
		if floor == 0 {
			continue
		}
		rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
		res, err := c.ReadLinearizable(rctx, keys[s])
		rcancel()
		if err != nil {
			h.violatef("shard %d durability: final read of %s (acked seq %d) failed: %v", shard, keys[s], floor, err)
			continue
		}
		if !res.Found {
			h.violatef("shard %d durability: %s lost after seq %d was acked", shard, keys[s], floor)
			continue
		}
		seq, perr := strconv.ParseUint(string(res.Value), 10, 64)
		if perr != nil || seq < floor {
			h.violatef("shard %d durability: %s = %q, below acked seq %d", shard, keys[s], res.Value, floor)
		}
	}
}

// checkIsolation is the cross-shard leakage invariant: a key written to
// shard S must not be readable through any other shard's ring, and the
// shared demux must never have delivered a frame to a shard a node does
// not host — every envelope stayed inside its ring even while crashes
// and partitions churned the shared endpoint.
func (h *msHarness) checkIsolation(keys []string) {
	for s, key := range keys {
		h.mu.Lock()
		floor := h.acked[wire.ShardID(s)]
		h.mu.Unlock()
		if floor == 0 {
			continue // never acked; nothing to leak
		}
		for o := 0; o < h.cfg.Shards; o++ {
			if o == s {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			res, err := h.rt.Shard(wire.ShardID(o)).ReadLinearizable(ctx, key)
			cancel()
			if err == nil && res.Found {
				h.violatef("isolation: shard %d key %q leaked into shard %d (value %q)", s, key, o, res.Value)
			}
		}
	}
	for _, id := range h.rt.Nodes() {
		if drops := h.rt.Demux(id).Stats().UnknownShardDrops; drops != 0 {
			h.violatef("isolation: node %s demux saw %d frames for shards it does not host", id, drops)
		}
	}
}

// checkElectionSafety asserts at most one leader per term per shard —
// shard rings share a transport but must never share an election.
func (h *msHarness) checkElectionSafety() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for shard, terms := range h.leaders {
		for term, set := range terms {
			if len(set) > 1 {
				ids := make([]wire.NodeID, 0, len(set))
				for id := range set {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				h.violations = append(h.violations,
					fmt.Sprintf("election safety: shard %d term %d had %d leaders: %v", shard, term, len(set), ids))
			}
		}
	}
}
