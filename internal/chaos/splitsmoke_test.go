package chaos

import (
	"testing"
)

// TestChaosShardSplitSmoke is the fixed-seed split-under-load gate: a
// 1-shard runtime splits online into two rings while routed writers keep
// committing through a follower partition before the split and a primary
// crash after it. Zero acked-write loss, routing matches the bumped
// table, both rings converge, and every stale rejection was retried.
func TestChaosShardSplitSmoke(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			cfg := SplitSmokeConfig{Seed: seed}
			if testing.Verbose() {
				cfg.Logf = t.Logf
			}
			rep, err := RunSplitSmoke(cfg)
			if err != nil {
				t.Fatalf("seed %d: harness error: %v", seed, err)
			}
			if !rep.Passed() {
				t.Errorf("seed %d: %d invariant violation(s):", seed, len(rep.Violations))
				for _, v := range rep.Violations {
					t.Errorf("  %s", v)
				}
			}
			if rep.Writes == 0 {
				t.Errorf("seed %d: workload never acknowledged a write (errs=%d)", seed, rep.WriteErrs)
			}
			if rep.TableVersion != 3 {
				t.Errorf("seed %d: table version %d after split, want 3 (fence then cutover)", seed, rep.TableVersion)
			}
			if testing.Verbose() {
				t.Logf("seed %d: writes=%d errs=%d rowsMoved=%d staleRejects=%d fenceWaits=%d",
					seed, rep.Writes, rep.WriteErrs, rep.RowsMoved, rep.StaleRejects, rep.FenceWaits)
			}
		})
	}
}
