package chaos

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -chaos.seed re-runs a single seed's exact schedule, the repro knob a
// failing campaign prints.
var seedFlag = flag.Int64("chaos.seed", -1, "run only this chaos seed (repro mode)")

// -chaos.seeds sizes the local campaign.
var seedsFlag = flag.Int("chaos.seeds", 20, "number of distinct seeds in the chaos campaign")

// -chaos.artifacts names a directory where failing seeds leave a repro
// bundle (repro command, violations, stats, op journal). CI uploads it.
var artifactsFlag = flag.String("chaos.artifacts", "", "directory for failing-seed repro artifacts")

// writeArtifact drops a failing seed's full report where CI can pick it
// up: everything needed to reproduce and triage without rerunning.
func writeArtifact(t *testing.T, rep *Report) {
	if *artifactsFlag == "" {
		return
	}
	if err := os.MkdirAll(*artifactsFlag, 0o755); err != nil {
		t.Logf("chaos: artifacts dir: %v", err)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "repro: %s\n\nviolations (%d):\n", rep.ReproCommand(), len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	fmt.Fprintf(&b, "\nstats:\n%s\n\nop journal (schedule):\n%s\n", rep.Stats, rep.Schedule)
	path := filepath.Join(*artifactsFlag, fmt.Sprintf("seed-%d.txt", rep.Seed))
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Logf("chaos: write artifact: %v", err)
		return
	}
	t.Logf("chaos artifact written: %s", path)
}

func runSeed(t *testing.T, seed int64) {
	t.Helper()
	cfg := Config{Seed: seed}
	if testing.Verbose() {
		cfg.Logf = t.Logf
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: harness error: %v\nrepro: go test -run TestChaos -chaos.seed=%d ./internal/chaos", seed, err, seed)
	}
	if !rep.Passed() {
		t.Errorf("seed %d: %d invariant violation(s):", seed, len(rep.Violations))
		for _, v := range rep.Violations {
			t.Errorf("  %s", v)
		}
		t.Errorf("stats:\n%s", rep.Stats)
		t.Errorf("schedule:\n%s", rep.Schedule)
		t.Errorf("repro: %s", rep.ReproCommand())
		writeArtifact(t, rep)
		return
	}
	if testing.Verbose() {
		t.Logf("seed %d passed:\n%s", seed, rep.Stats)
	}
}

// TestChaos is the randomized campaign: a pool of distinct seeds, each
// a full cluster life under its own fault schedule with every invariant
// checker armed. With -chaos.seed=N it runs exactly that seed instead —
// the deterministic reproduction path.
func TestChaos(t *testing.T) {
	if *seedFlag >= 0 {
		runSeed(t, *seedFlag)
		return
	}
	if testing.Short() {
		t.Skip("chaos campaign skipped in -short mode (run TestChaosSmoke instead)")
	}
	for seed := int64(1); seed <= int64(*seedsFlag); seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			runSeed(t, seed)
		})
	}
}

func seedName(seed int64) string { return fmt.Sprintf("seed-%d", seed) }

// TestChaosSmoke is the fixed-seed subset CI runs on every push: small
// enough to keep the gate fast, seeded identically everywhere so a CI
// failure reproduces locally with the printed command.
func TestChaosSmoke(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			runSeed(t, seed)
		})
	}
}

// TestChaosParallelApplySmoke runs the fixed-seed smoke with the
// replica appliers forced wide (8 workers), so the parallel scheduler —
// writeset dependency tracking, out-of-order staging, in-order commit —
// faces the full fault schedule, and the serial-replay equivalence
// checker judges what it produced.
func TestChaosParallelApplySmoke(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			cfg := Config{Seed: seed, ApplyWorkers: 8}
			if testing.Verbose() {
				cfg.Logf = t.Logf
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d: harness error: %v", seed, err)
			}
			if !rep.Passed() {
				t.Errorf("seed %d: %d invariant violation(s):", seed, len(rep.Violations))
				for _, v := range rep.Violations {
					t.Errorf("  %s", v)
				}
				t.Errorf("repro: go test -run TestChaosParallelApplySmoke ./internal/chaos")
			}
		})
	}
}

// TestChaosPipelinedCommitSmoke runs the fixed-seed smoke with the
// leader's commit pipeline opened wide (depth 4), so groups are
// consensus-pending in flight when the schedule crashes and partitions
// the primary. Seeds 3 and 11 both include mysql-0 crashes and
// partitions; the durability and gap-free-engine checkers judge whether
// any acked write was lost or any unacked write leaked across the
// mid-pipeline demotions this provokes.
func TestChaosPipelinedCommitSmoke(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			cfg := Config{Seed: seed, CommitPipelineDepth: 4}
			if testing.Verbose() {
				cfg.Logf = t.Logf
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatalf("seed %d: harness error: %v", seed, err)
			}
			if !rep.Passed() {
				t.Errorf("seed %d: %d invariant violation(s):", seed, len(rep.Violations))
				for _, v := range rep.Violations {
					t.Errorf("  %s", v)
				}
				t.Errorf("repro: go test -run TestChaosPipelinedCommitSmoke ./internal/chaos")
			}
		})
	}
}

// TestScheduleDeterminism pins the property the repro workflow depends
// on: the schedule is a pure function of the config.
func TestScheduleDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := GenerateSchedule(Config{Seed: seed})
		b := GenerateSchedule(Config{Seed: seed})
		if len(a) != len(b) {
			t.Fatalf("seed %d: schedule lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: action %d differs: %v vs %v", seed, i, a[i], b[i])
			}
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
	}
}

// TestScheduleRespectsMaxDown replays generated schedules symbolically
// and asserts the generator's own bookkeeping held: concurrently-down
// members never exceed MaxDown, restarts only target down members, and
// every fsync failure is followed by a crash and a restart of the same
// node (the sticky log-writer error makes the node useless until it
// recovers from disk).
func TestScheduleRespectsMaxDown(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		cfg := Config{Seed: seed}.withDefaults()
		sched := GenerateSchedule(cfg)
		down := map[string]bool{}
		pendingFail := map[string]int{} // fsync-failed node -> crash/restart debt
		for _, a := range sched {
			id := string(a.Node)
			switch a.Kind {
			case ActCrash:
				down[id] = true
				if len(down) > cfg.MaxDown {
					t.Fatalf("seed %d: %d members down after %v", seed, len(down), a)
				}
				if pendingFail[id] == 2 {
					pendingFail[id] = 1
				}
			case ActRestart:
				if !down[id] {
					t.Fatalf("seed %d: restart of up member: %v", seed, a)
				}
				delete(down, id)
				if pendingFail[id] == 1 {
					delete(pendingFail, id)
				}
			case ActFsyncFail:
				pendingFail[id] = 2 // owes a crash, then a restart
			}
		}
		if len(pendingFail) > 0 {
			t.Fatalf("seed %d: fsync-failed nodes never crash+restarted: %v", seed, pendingFail)
		}
	}
}
