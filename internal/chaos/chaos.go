// Package chaos is a deterministic nemesis harness for MyRaft
// replicasets: it derives a randomized fault schedule from a single
// seed, drives a full cluster (MySQL voters, logtailers, the simulated
// network) through it while a read/write workload runs, and then
// machine-checks the safety invariants the paper argues for — election
// safety, log matching, durability of acknowledged writes across
// crashes, GTID-set monotonicity on the MySQL substrate, read safety of
// the linearizable/lease read path, and purge catch-up (a member
// restarted after the purge floor passed it converges back to the
// cluster GTID set through snapshot install).
//
// Everything randomized — the schedule, each member's transport fault
// RNG, the network's jitter — is derived from Config.Seed, so a failing
// run is reproduced by re-running the same seed. The schedule itself is
// a pure function of the Config (GenerateSchedule); only message-level
// outcomes (which packets a drop rule eats) depend on goroutine timing.
//
// Faults are injected through composition points the production stack
// already exposes: transport.Fault wraps each member's endpoint
// (drop/delay/duplicate/block), logstore.Faulty wraps each log store
// (fsync stalls and errors), clock.Skewed wraps each member's clock
// (lease-path skew), and the network applies symmetric and asymmetric
// partitions. Nothing in the consensus core knows it is being tested.
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"myraft/internal/binlog"
	"myraft/internal/clock"
	"myraft/internal/cluster"
	"myraft/internal/gtid"
	"myraft/internal/logstore"
	"myraft/internal/raft"
	"myraft/internal/readpath"
	"myraft/internal/storage"
	"myraft/internal/transport"
	"myraft/internal/wire"
)

// Config parameterizes one chaos run. The zero value (plus a Seed) is a
// sensible smoke-test configuration.
type Config struct {
	// Seed derives every random choice of the run.
	Seed int64
	// FollowerRegions is the PaperTopology parameter (default 1: two
	// regions, two MySQL voters, four logtailers).
	FollowerRegions int
	// Duration is the fault-injection window (default 1.2s).
	Duration time.Duration
	// Writers and Readers size the workload (default 2 each). Each writer
	// owns one key and writes strictly increasing sequence numbers to it;
	// readers alternate linearizable and lease reads against those keys.
	Writers int
	Readers int
	// MaxDown caps concurrently-crashed members (default 2, which keeps a
	// data-commit quorum of the six-voter paper topology alive).
	MaxDown int
	// MaxClockSkew is the raft-config skew bound; injected offsets stay
	// within ±MaxClockSkew/2 (default 4ms).
	MaxClockSkew time.Duration
	// ConvergeTimeout bounds the post-heal convergence wait (default 30s).
	ConvergeTimeout time.Duration
	// ApplyWorkers sets every MySQL member's replica-apply concurrency
	// (cluster.Options.ApplyWorkers): 0 keeps the mysql default, 1 forces
	// serial apply. The parallel-apply equivalence checker judges the
	// result either way.
	ApplyWorkers int
	// CommitPipelineDepth sets every MySQL member's primary commit
	// pipeline depth (cluster.Options.CommitPipelineDepth): 0 keeps the
	// mysql default, 1 forces the serial pipeline. The acked-write
	// durability and gap-free engine sequence checkers judge the result
	// either way.
	CommitPipelineDepth int
	// Logf, when set, receives a trace of applied actions and checker
	// progress (testing.T.Logf fits).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.FollowerRegions == 0 {
		c.FollowerRegions = 1
	}
	if c.Duration == 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if c.Writers == 0 {
		c.Writers = 2
	}
	if c.Readers == 0 {
		c.Readers = 2
	}
	if c.MaxDown == 0 {
		c.MaxDown = 2
	}
	if c.MaxClockSkew == 0 {
		c.MaxClockSkew = 4 * time.Millisecond
	}
	if c.ConvergeTimeout == 0 {
		c.ConvergeTimeout = 30 * time.Second
	}
	return c
}

func (c Config) maxClockSkew() time.Duration { return c.withDefaults().MaxClockSkew }

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Report is the outcome of one chaos run.
type Report struct {
	Seed       int64
	Schedule   Schedule
	Stats      *Stats
	Violations []string
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool { return len(r.Violations) == 0 }

// ReproCommand returns the one-liner that re-runs this report's exact
// fault schedule.
func (r *Report) ReproCommand() string {
	return fmt.Sprintf("go test -run TestChaos -chaos.seed=%d ./internal/chaos", r.Seed)
}

// gtidState is the per-member, per-crash-epoch applied-GTID tracker of
// the monotonicity checker.
type gtidState struct {
	epoch       int
	prevApplied uint64
	applied     *gtid.Set
}

// harness carries one run's mutable state: the latest fault wrapper per
// member (re-created on every restart), crash epochs to invalidate
// samples torn by a concurrent crash, leader claims per term, and the
// per-key acknowledged-write floors the read-safety and durability
// checkers compare against.
type harness struct {
	cfg   Config
	stats *Stats
	c     *cluster.Cluster

	mu         sync.Mutex
	faults     map[wire.NodeID]*transport.Fault
	faultsAll  []*transport.Fault
	stores     map[wire.NodeID]*logstore.Faulty
	storesAll  []*logstore.Faulty
	skews      map[wire.NodeID]*clock.Skewed
	skewsAll   []*clock.Skewed
	epochs     map[wire.NodeID]int
	leaders    map[uint64]map[wire.NodeID]bool
	acked      map[string]uint64
	violations []string
	// postPurgeRestarts records, per member, the cluster purge floor in
	// force when the member was last restarted — the population the
	// purge catch-up invariant judges at the end of the run.
	postPurgeRestarts map[wire.NodeID]uint64

	// GTID checker state, touched only by the sampler goroutine and the
	// final checker (which runs after the sampler has stopped).
	gtids       map[wire.NodeID]*gtidState
	appliedEver *gtid.Set
}

func newHarness(cfg Config) *harness {
	return &harness{
		cfg:               cfg,
		stats:             newStats(),
		faults:            make(map[wire.NodeID]*transport.Fault),
		stores:            make(map[wire.NodeID]*logstore.Faulty),
		skews:             make(map[wire.NodeID]*clock.Skewed),
		epochs:            make(map[wire.NodeID]int),
		leaders:           make(map[uint64]map[wire.NodeID]bool),
		acked:             make(map[string]uint64),
		postPurgeRestarts: make(map[wire.NodeID]uint64),
		gtids:             make(map[wire.NodeID]*gtidState),
		appliedEver:       gtid.NewSet(),
	}
}

func (h *harness) violatef(format string, args ...any) {
	h.mu.Lock()
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

// seedFor derives a per-member RNG seed from the master seed, stable
// across restarts so a member's fault stream depends only on (seed, id).
func (h *harness) seedFor(id wire.NodeID) int64 {
	f := fnv.New64a()
	f.Write([]byte(id))
	return h.cfg.Seed ^ int64(f.Sum64())
}

// Cluster wiring: each hook registers the newest wrapper instance under
// the member's ID (startMember re-invokes them on every restart, so
// fault state starts each member life fresh) and keeps every instance
// ever created for final healing and stats aggregation.

func (h *harness) wrapTransport(id wire.NodeID, t transport.Transport) transport.Transport {
	f := transport.NewFault(t, h.seedFor(id), nil)
	h.mu.Lock()
	h.faults[id] = f
	h.faultsAll = append(h.faultsAll, f)
	h.mu.Unlock()
	return f
}

func (h *harness) wrapLogStore(id wire.NodeID, s raft.LogStore) raft.LogStore {
	f := logstore.NewFaulty(s)
	h.mu.Lock()
	h.stores[id] = f
	h.storesAll = append(h.storesAll, f)
	h.mu.Unlock()
	return f
}

func (h *harness) wrapClock(id wire.NodeID, c clock.Clock) clock.Clock {
	sk := clock.NewSkewed(c)
	h.mu.Lock()
	h.skews[id] = sk
	h.skewsAll = append(h.skewsAll, sk)
	h.mu.Unlock()
	return sk
}

func (h *harness) fault(id wire.NodeID) *transport.Fault {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.faults[id]
}

func (h *harness) store(id wire.NodeID) *logstore.Faulty {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stores[id]
}

func (h *harness) skew(id wire.NodeID) *clock.Skewed {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.skews[id]
}

func (h *harness) epoch(id wire.NodeID) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epochs[id]
}

func (h *harness) bumpEpoch(id wire.NodeID) {
	h.mu.Lock()
	h.epochs[id]++
	h.mu.Unlock()
}

// onRoleChange runs synchronously on each node's event loop: record and
// get out.
func (h *harness) onRoleChange(rc raft.RoleChange) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch rc.Role {
	case raft.RoleCandidate:
		h.stats.Elections.Inc()
	case raft.RoleLeader:
		set := h.leaders[rc.Term]
		if set == nil {
			set = make(map[wire.NodeID]bool)
			h.leaders[rc.Term] = set
			h.stats.LeaderTerms.Inc()
		}
		set[rc.ID] = true
	}
}

// ObserveRead implements readpath.Witness: count what the read path
// served at each level while faults were active.
func (h *harness) ObserveRead(_ string, res readpath.Result) {
	switch res.Level {
	case readpath.LevelLinearizable:
		h.stats.LinReads.Inc()
	case readpath.LevelLease:
		h.stats.LeaseReads.Inc()
		if res.FellBack {
			h.stats.FallbackObs.Inc()
		}
	}
}

func (h *harness) ackFloor(key string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acked[key]
}

func (h *harness) ack(key string, seq uint64) {
	h.mu.Lock()
	if seq > h.acked[key] {
		h.acked[key] = seq
	}
	h.mu.Unlock()
}

// Run executes one full chaos run: boot the paper topology with every
// fault wrapper installed, start the workload, play the seed-derived
// schedule, heal and recover everything, and check the invariants. The
// returned error reports harness-level failures (boot trouble); safety
// verdicts are in Report.Violations.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	h := newHarness(cfg)
	sched := GenerateSchedule(cfg)

	c, err := cluster.New(cluster.Options{
		Name: fmt.Sprintf("rs-chaos-%d", cfg.Seed),
		Raft: raft.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			MaxClockSkew:      cfg.MaxClockSkew,
			OnRoleChange:      h.onRoleChange,
		},
		NetConfig: transport.Config{
			IntraRegion: 200 * time.Microsecond,
			CrossRegion: 2 * time.Millisecond,
		},
		Seed:                cfg.Seed,
		WrapTransport:       h.wrapTransport,
		WrapLogStore:        h.wrapLogStore,
		WrapClock:           h.wrapClock,
		ReadWitness:         h,
		ApplyWorkers:        cfg.ApplyWorkers,
		CommitPipelineDepth: cfg.CommitPipelineDepth,
	}, cluster.PaperTopology(cfg.FollowerRegions, 0))
	if err != nil {
		return nil, fmt.Errorf("chaos: build cluster: %w", err)
	}
	defer c.Close()
	h.c = c

	bctx, bcancel := context.WithTimeout(context.Background(), 15*time.Second)
	err = c.Bootstrap(bctx, "mysql-0")
	bcancel()
	if err != nil {
		return nil, fmt.Errorf("chaos: bootstrap: %w", err)
	}

	// Workload + samplers run for the whole fault window.
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < cfg.Writers; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); h.writer(wctx, i) }(i)
	}
	for i := 0; i < cfg.Readers; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); h.reader(wctx, i) }(i)
	}
	wg.Add(1)
	go func() { defer wg.Done(); h.gtidSampler(wctx) }()

	h.execute(sched)

	wcancel()
	wg.Wait()

	// Heal every fault and bring every member back before judging the
	// convergence invariants.
	h.healAll()
	for _, id := range c.DownMembers() {
		h.bumpEpoch(id)
		if err := c.Restart(id); err != nil {
			return nil, fmt.Errorf("chaos: final restart of %s: %w", id, err)
		}
		h.noteRestart(id)
	}

	h.checkConvergence()
	h.checkParallelApplyEquivalence()
	h.checkDurability()
	h.checkGTIDFinal()
	h.checkPurgeCatchup()
	h.checkElectionSafety()
	h.finalizeStats()

	h.mu.Lock()
	violations := append([]string(nil), h.violations...)
	h.mu.Unlock()
	return &Report{Seed: cfg.Seed, Schedule: sched, Stats: h.stats, Violations: violations}, nil
}

// execute plays the schedule against the wall clock.
func (h *harness) execute(sched Schedule) {
	start := time.Now()
	for _, a := range sched {
		if d := a.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		h.cfg.logf("chaos: apply %s", a)
		h.apply(a)
	}
	if d := h.cfg.Duration - time.Since(start); d > 0 {
		time.Sleep(d)
	}
}

func (h *harness) apply(a Action) {
	switch a.Kind {
	case ActCrash:
		// Epoch bumps on both sides of the crash: a GTID sample that
		// overlaps either boundary sees a changed epoch and discards
		// itself rather than attributing pre-crash state to the new life.
		h.bumpEpoch(a.Node)
		if err := h.c.Crash(a.Node); err == nil {
			h.stats.Crashes.Inc()
		}
		h.bumpEpoch(a.Node)
	case ActRestart:
		h.bumpEpoch(a.Node)
		if err := h.c.Restart(a.Node); err != nil {
			h.violatef("harness: restart %s: %v", a.Node, err)
			return
		}
		h.noteRestart(a.Node)
	case ActPartition:
		h.c.Net().Partition(a.Node, a.Peer)
		h.stats.Partitions.Inc()
	case ActPartitionOneWay:
		h.c.Net().PartitionOneWay(a.Node, a.Peer)
		h.stats.Partitions.Inc()
	case ActHealNet:
		h.c.Net().HealAll()
		h.stats.NetHeals.Inc()
	case ActDrop:
		if f := h.fault(a.Node); f != nil {
			f.SetDrop(a.P)
			h.stats.FaultRules.Inc()
		}
	case ActDelay:
		if f := h.fault(a.Node); f != nil {
			f.SetDelay(a.P, a.Dur)
			h.stats.FaultRules.Inc()
		}
	case ActDuplicate:
		if f := h.fault(a.Node); f != nil {
			f.SetDuplicate(a.P)
			h.stats.FaultRules.Inc()
		}
	case ActHealFaults:
		if f := h.fault(a.Node); f != nil {
			f.Heal()
		}
	case ActFsyncStall:
		if s := h.store(a.Node); s != nil {
			s.StallSyncs(a.Dur)
			h.stats.FsyncStalls.Inc()
		}
	case ActFsyncHeal:
		if s := h.store(a.Node); s != nil {
			s.Heal()
		}
	case ActFsyncFail:
		if s := h.store(a.Node); s != nil {
			s.FailSyncs(fmt.Errorf("chaos: injected fsync error"))
			h.stats.FsyncFails.Inc()
		}
	case ActSkew:
		if sk := h.skew(a.Node); sk != nil {
			sk.SetOffset(a.Dur)
			h.stats.SkewChanges.Inc()
		}
	case ActPurge:
		// One purge-coordinator round; rounds without a leader or with
		// nothing purgeable are legitimate no-ops under faults.
		if floor, err := h.c.PurgeOnce(a.N); err == nil && floor > 0 {
			h.stats.Purges.Inc()
			h.cfg.logf("chaos: purge floor -> %d (budget %d)", floor, a.N)
		}
	}
}

// noteRestart records a recovery, and — when the cluster has already
// purged history — marks the member for the purge catch-up check: its
// on-disk log may now start below the cluster floor, so convergence must
// come through snapshot install rather than log replay.
func (h *harness) noteRestart(id wire.NodeID) {
	h.stats.Restarts.Inc()
	if floor := h.c.PurgeFloor(); floor > 0 {
		h.mu.Lock()
		h.postPurgeRestarts[id] = floor
		h.mu.Unlock()
	}
}

// healAll returns the run to a clean substrate: no partitions, no
// transport rules (held messages flushed), no log-store faults, clocks
// back in sync.
func (h *harness) healAll() {
	h.c.Net().HealAll()
	h.mu.Lock()
	faults := append([]*transport.Fault(nil), h.faultsAll...)
	stores := append([]*logstore.Faulty(nil), h.storesAll...)
	skews := append([]*clock.Skewed(nil), h.skewsAll...)
	h.mu.Unlock()
	for _, f := range faults {
		f.Heal()
	}
	for _, s := range stores {
		s.Heal()
	}
	for _, sk := range skews {
		sk.SetOffset(0)
	}
}

// writer owns one key and writes strictly increasing sequence numbers
// to it. The sequence advances even on failed attempts, so a write that
// times out at the client but commits later can never alias a newer
// acknowledged value — the read-safety floor stays sound.
func (h *harness) writer(ctx context.Context, i int) {
	key := fmt.Sprintf("chaos-w%d", i)
	client := h.c.NewClient(0)
	var seq uint64
	for ctx.Err() == nil {
		seq++
		wctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
		res, err := client.TryWrite(wctx, key, []byte(strconv.FormatUint(seq, 10)))
		cancel()
		if err == nil {
			h.ack(key, seq)
			h.stats.Writes.Inc()
			h.stats.WriteLatency.Observe(res.Latency)
		} else {
			h.stats.WriteErrors.Inc()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// reader checks read safety online: capture the key's acknowledged
// floor before issuing the read; a linearizable (or lease — leases fall
// back rather than going stale) read that completes must return a
// sequence at or above that floor.
func (h *harness) reader(ctx context.Context, i int) {
	lin := i%2 == 0
	rng := rand.New(rand.NewSource(h.cfg.Seed + 7919*int64(i+1)))
	for ctx.Err() == nil {
		key := fmt.Sprintf("chaos-w%d", rng.Intn(h.cfg.Writers))
		floor := h.ackFloor(key)
		rctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
		var res readpath.Result
		var err error
		if lin {
			res, err = h.c.ReadLinearizable(rctx, key)
		} else {
			res, err = h.c.ReadLease(rctx, key)
		}
		cancel()
		if err == nil {
			h.stats.Reads.Inc()
			h.checkRead("read safety", key, floor, res)
		} else {
			h.stats.ReadErrors.Inc()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (h *harness) checkRead(what, key string, floor uint64, res readpath.Result) {
	if floor == 0 {
		return
	}
	if !res.Found {
		h.violatef("%s: %s read of %s found nothing after seq %d was acked", what, res.Level, key, floor)
		return
	}
	seq, err := strconv.ParseUint(string(res.Value), 10, 64)
	if err != nil {
		h.violatef("%s: %s read of %s returned garbage %q: %v", what, res.Level, key, res.Value, err)
		return
	}
	if seq < floor {
		h.violatef("%s: %s read of %s returned seq %d older than acked seq %d", what, res.Level, key, seq, floor)
	}
}

// gtidSampler drives the GTID monotonicity checker: within one crash
// epoch, a member's executed GTID set (its binlog contents) must always
// contain every GTID its applier has applied — applied implies
// committed, and committed entries are exactly what log truncation must
// never remove. Samples that overlap a crash are discarded via the
// epoch counters; across a crash the per-member state resets, because a
// torn tail may legally drop locally-unsynced copies of entries.
func (h *harness) gtidSampler(ctx context.Context) {
	var mysqls []wire.NodeID
	for _, m := range h.c.Members() {
		if m.Spec.Kind == cluster.KindMySQL {
			mysqls = append(mysqls, m.Spec.ID)
		}
	}
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, id := range mysqls {
			h.sampleGTID(id)
		}
	}
}

func (h *harness) sampleGTID(id wire.NodeID) {
	e0 := h.epoch(id)
	_, srv, ok := h.c.MySQLStack(id)
	if !ok {
		return
	}
	st := h.gtids[id]
	if st == nil || st.epoch != e0 {
		st = &gtidState{epoch: e0, applied: gtid.NewSet()}
		h.gtids[id] = st
	}
	applied := srv.ApplierLastApplied()
	fresh := gtid.NewSet()
	lg := srv.Log()
	for idx := st.prevApplied + 1; idx <= applied; idx++ {
		ent, err := lg.Entry(idx)
		if err != nil {
			return // crashed or rotated under us; resample later
		}
		if ent.HasGTID {
			fresh.Add(ent.GTID)
		}
	}
	executed := srv.GTIDExecuted()
	if h.epoch(id) != e0 {
		return // crash landed mid-sample; state is torn, discard
	}
	st.prevApplied = applied
	st.applied.Union(fresh)
	h.appliedEver.Union(fresh)
	if !executed.ContainsSet(st.applied) {
		h.violatef("gtid monotonicity: %s executed set %v stopped containing its applied set %v with no crash in between",
			id, executed, st.applied)
	}
}

// checkConvergence waits for the healed cluster to elect a primary and
// re-converge every member's log and engine — the log matching
// invariant judged at quiescence, over full content checksums rather
// than samples.
func (h *harness) checkConvergence() {
	deadline := time.Now().Add(h.cfg.ConvergeTimeout)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	if _, err := h.c.AnyPrimary(ctx); err != nil {
		h.violatef("convergence: no primary after full heal: %v\nstatus: %s", err, h.statusLines())
		return
	}
	members := h.c.Members()
	var lastLog, lastEng string
	for {
		logOK := false
		// Under the bounded-log lifecycle the logs are windows, not
		// prefixes: compare from the highest first-retained index so a
		// snapshot-installed member's missing (purged) prefix is not
		// mistaken for divergence.
		from := h.c.LogCommonStart()
		sums, err := h.c.LogChecksums(from)
		if err == nil && len(sums) == len(members) {
			logOK = allEqual(sums)
			lastLog = fmt.Sprintf("from=%d %v", from, sums)
		} else {
			lastLog = fmt.Sprintf("from=%d %v (err=%v)", from, sums, err)
		}
		esums := h.c.EngineChecksums()
		engOK := len(esums) > 0 && allEqual(esums)
		lastEng = fmt.Sprintf("%v", esums)
		if logOK && engOK {
			h.cfg.logf("chaos: converged: logs=%s engines=%s", lastLog, lastEng)
			return
		}
		if time.Now().After(deadline) {
			h.violatef("log matching: no convergence within %s: logs=%s engines=%s\nstatus: %s",
				h.cfg.ConvergeTimeout, lastLog, lastEng, h.statusLines())
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkParallelApplyEquivalence re-derives every full-history member's
// engine state by replaying its relay log serially, in strict index
// order, and compares row checksums: whatever interleaving the parallel
// applier chose, the result must equal the canonical serial order
// (§3.5 writeset-scheduling safety). Members whose log no longer starts
// at index 1 (snapshot-installed after purge) cannot be replayed from
// an empty state and are skipped with a trace line.
func (h *harness) checkParallelApplyEquivalence() {
	for _, m := range h.c.Members() {
		srv := m.Server()
		if srv == nil || m.IsDown() {
			continue
		}
		if first := srv.Log().FirstIndex(); first > 1 {
			h.cfg.logf("chaos: parallel-apply equivalence: skip %s (log starts at %d)", m.Spec.ID, first)
			continue
		}
		// The workload has stopped and convergence held, but the applier
		// may still be draining its tail: only judge a replay whose
		// engine position held still while it ran.
		deadline := time.Now().Add(h.cfg.ConvergeTimeout)
		for {
			through := srv.Engine().LastCommitted().Index
			sum, err := h.serialReplayChecksum(srv.Log(), through)
			if err != nil {
				h.violatef("parallel apply: %s: serial replay: %v", m.Spec.ID, err)
				break
			}
			if srv.Engine().LastCommitted().Index == through {
				if got := srv.Engine().Checksum(); got != sum {
					h.violatef("parallel apply: %s: engine checksum %08x != serial replay %08x through index %d",
						m.Spec.ID, got, sum, through)
				} else {
					h.cfg.logf("chaos: parallel-apply equivalence: %s ok (%08x through %d)", m.Spec.ID, sum, through)
				}
				break
			}
			if time.Now().After(deadline) {
				h.violatef("parallel apply: %s: engine position would not settle for replay", m.Spec.ID)
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// serialReplayChecksum folds the data entries of [1, through] into a
// fresh row map one at a time and returns the content checksum a
// hypothetical engine holding that state would report.
func (h *harness) serialReplayChecksum(l *binlog.Log, through uint64) (uint32, error) {
	rows := make(map[string][]byte)
	const chunk = 512
	for from := uint64(1); from <= through; from += chunk {
		to := min(from+chunk-1, through)
		entries, err := l.Entries(from, to)
		if err != nil {
			return 0, err
		}
		for _, e := range entries {
			if e.Type != binlog.EntryNormal {
				continue
			}
			changes, _, err := storage.DecodeTxnPayload(e.Payload)
			if err != nil {
				return 0, fmt.Errorf("entry %d: %w", e.OpID.Index, err)
			}
			for _, c := range changes {
				if c.IsDelete() {
					delete(rows, c.Key)
				} else {
					rows[c.Key] = c.After
				}
			}
		}
	}
	return storage.ChecksumRows(rows), nil
}

// statusLines renders every member's raft status for convergence
// failure reports.
func (h *harness) statusLines() string {
	var lines []string
	for _, m := range h.c.Members() {
		n := m.Node()
		if n == nil {
			lines = append(lines, fmt.Sprintf("%s: down", m.Spec.ID))
			continue
		}
		st := n.Status()
		ds := n.DurabilityStats()
		lines = append(lines, fmt.Sprintf("%s: role=%v term=%d leader=%s last=%v commit=%d durable=%d werr=%v",
			st.ID, st.Role, st.Term, st.Leader, st.LastOpID, st.CommitIndex, st.DurableIndex, ds.Err))
		if ds.Err != nil {
			if s := h.store(m.Spec.ID); s != nil {
				j := s.Journal()
				if len(j) > 40 {
					j = j[len(j)-40:]
				}
				lines = append(lines, fmt.Sprintf("%s store journal: %v", m.Spec.ID, j))
			}
		}
	}
	return "\n  " + fmt.Sprint(lines)
}

// checkDurability re-reads every key's final value linearizably: an
// acknowledged write — acked only after quorum fsync — must never be
// lost, no matter how many members crashed.
func (h *harness) checkDurability() {
	h.mu.Lock()
	acked := make(map[string]uint64, len(h.acked))
	for k, v := range h.acked {
		acked[k] = v
	}
	h.mu.Unlock()
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		res, err := h.c.ReadLinearizable(ctx, key)
		cancel()
		if err != nil {
			h.violatef("durability: final read of %s (acked seq %d) failed: %v", key, acked[key], err)
			continue
		}
		h.checkRead("durability", key, acked[key], res)
	}
}

// checkGTIDFinal verifies the quiesced MySQL members agree on one
// executed GTID set and that it contains every GTID any member ever
// applied: applied implies committed, and committed transactions must
// survive into the converged state.
func (h *harness) checkGTIDFinal() {
	sets := make(map[wire.NodeID]*gtid.Set)
	for _, m := range h.c.Members() {
		if m.Spec.Kind != cluster.KindMySQL {
			continue
		}
		_, srv, ok := h.c.MySQLStack(m.Spec.ID)
		if !ok {
			h.violatef("gtid convergence: %s still down after final heal", m.Spec.ID)
			continue
		}
		sets[m.Spec.ID] = srv.GTIDExecuted()
	}
	var ref *gtid.Set
	var refID wire.NodeID
	for id, s := range sets {
		if ref == nil {
			ref, refID = s, id
			continue
		}
		if !ref.Equal(s) {
			h.violatef("gtid convergence: %s executed %v != %s executed %v", refID, ref, id, s)
		}
	}
	for id, s := range sets {
		if !s.ContainsSet(h.appliedEver) {
			h.violatef("gtid durability: %s executed %v is missing applied-anywhere GTIDs %v", id, s, h.appliedEver)
		}
	}
}

// checkPurgeCatchup is the purge catch-up invariant: every MySQL member
// that was restarted after a purge floor was in force must still have
// converged to the primary's executed GTID set — its purged prefix is
// unreplayable, so only the snapshot path (or a log window still above
// the floor) can have gotten it there, and neither is allowed to lose or
// invent transactions.
func (h *harness) checkPurgeCatchup() {
	h.mu.Lock()
	restarts := make(map[wire.NodeID]uint64, len(h.postPurgeRestarts))
	for id, f := range h.postPurgeRestarts {
		restarts[id] = f
	}
	h.mu.Unlock()
	if len(restarts) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.ConvergeTimeout)
	primary, err := h.c.AnyPrimary(ctx)
	cancel()
	if err != nil || primary.Server() == nil {
		h.violatef("purge catch-up: no primary to judge against: %v", err)
		return
	}
	ref := primary.Server().GTIDExecuted()
	for id, floor := range restarts {
		_, srv, ok := h.c.MySQLStack(id)
		if !ok {
			continue // logtailer or (impossibly) still down; GTID checks do not apply
		}
		if got := srv.GTIDExecuted(); !got.Equal(ref) {
			h.violatef("purge catch-up: %s restarted under purge floor %d but its executed set %v never reconverged to the primary's %v",
				id, floor, got, ref)
		}
	}
}

// checkElectionSafety asserts at most one member ever claimed
// leadership of any term, from the role-change records the raft hook
// captured.
func (h *harness) checkElectionSafety() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for term, set := range h.leaders {
		if len(set) > 1 {
			ids := make([]wire.NodeID, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			h.violations = append(h.violations,
				fmt.Sprintf("election safety: term %d had %d leaders: %v", term, len(set), ids))
		}
	}
}

// finalizeStats folds every transport fault wrapper's message counters
// into the run stats, plus the snapshot-transfer counters of each
// member's final life (restarts reset a node's counters, so this is a
// lower bound on transfer activity — enough to show the snapshot path
// actually ran under purge faults).
func (h *harness) finalizeStats() {
	h.mu.Lock()
	faults := append([]*transport.Fault(nil), h.faultsAll...)
	h.mu.Unlock()
	for _, f := range faults {
		st := f.Stats()
		h.stats.MsgDropped.Add(st.Dropped)
		h.stats.MsgDelayed.Add(st.Delayed)
		h.stats.MsgDuplicated.Add(st.Duplicated)
		h.stats.DropsPerLife.Observe(st.Dropped)
	}
	for _, m := range h.c.Members() {
		if n := m.Node(); n != nil {
			ss := n.SnapshotStats()
			h.stats.SnapshotInstalls.Add(ss.Installs)
			h.stats.SnapshotChunks.Add(ss.ChunksSent)
		}
	}
	// Fold every member tracer's stage summaries into one per-stage
	// rollup, so a failing seed's report shows where write-path time
	// went under the faults (a fat fsync p99 next to fsync-stall counts
	// tells the story at a glance).
	for _, mr := range h.c.MemberRegistries() {
		if mr.Tracer == nil {
			continue
		}
		for st, sum := range mr.Tracer.StageSummaries() {
			agg := h.stats.WritePath[st.String()]
			agg.Count += sum.Count
			if sum.P99 > agg.P99 {
				agg.P99 = sum.P99
			}
			if sum.Max > agg.Max {
				agg.Max = sum.Max
			}
			h.stats.WritePath[st.String()] = agg
		}
	}
}

func allEqual[K comparable](m map[K]uint32) bool {
	var ref uint32
	first := true
	for _, v := range m {
		if first {
			ref, first = v, false
			continue
		}
		if v != ref {
			return false
		}
	}
	return true
}
