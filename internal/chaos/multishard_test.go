package chaos

import (
	"testing"
)

// TestChaosMultiShardSmoke is the fixed-seed multi-shard gate: 3 nodes ×
// 4 shards over the shared coalescing transport, node-level crashes and
// partitions, then per-shard election safety, log matching, durability,
// and the cross-shard isolation invariant.
func TestChaosMultiShardSmoke(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			cfg := MultiShardConfig{Seed: seed}
			if testing.Verbose() {
				cfg.Logf = t.Logf
			}
			rep, err := RunMultiShard(cfg)
			if err != nil {
				t.Fatalf("seed %d: harness error: %v", seed, err)
			}
			if !rep.Passed() {
				t.Errorf("seed %d: %d invariant violation(s):", seed, len(rep.Violations))
				for _, v := range rep.Violations {
					t.Errorf("  %s", v)
				}
			}
			if rep.Writes == 0 {
				t.Errorf("seed %d: workload never acknowledged a write (errs=%d)", seed, rep.WriteErrs)
			}
			if testing.Verbose() {
				t.Logf("seed %d: writes=%d errs=%d crashes=%d partitions=%d",
					seed, rep.Writes, rep.WriteErrs, rep.Crashes, rep.Partitions)
			}
		})
	}
}
