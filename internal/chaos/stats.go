package chaos

import (
	"fmt"
	"strings"

	"myraft/internal/metrics"
	"myraft/internal/trace"
)

// Stats aggregates one chaos run's fault-injection and workload
// counters through internal/metrics, so a failing seed's report shows
// what the schedule actually did to the cluster (a schedule line saying
// "drop p=0.3" is only meaningful next to how many messages that rule
// ate).
type Stats struct {
	// Fault injection.
	Crashes     metrics.Counter
	Restarts    metrics.Counter // recoveries observed (scheduled + final heal)
	Partitions  metrics.Counter // symmetric + asymmetric partitions applied
	NetHeals    metrics.Counter
	FaultRules  metrics.Counter // drop/delay/duplicate rule changes
	FsyncStalls metrics.Counter
	FsyncFails  metrics.Counter
	SkewChanges metrics.Counter
	Purges      metrics.Counter // purge rounds that actually advanced the floor

	// Message-level effects, aggregated over every transport.Fault
	// wrapper the run created (one per member life).
	MsgDropped    metrics.Counter
	MsgDelayed    metrics.Counter
	MsgDuplicated metrics.Counter
	// DropsPerLife is the distribution of dropped-message counts across
	// member lives — a life with zero drops never had a drop rule or
	// block applied to it.
	DropsPerLife *metrics.IntHistogram

	// Consensus churn observed through the raft role-change hook.
	Elections   metrics.Counter // campaigns started
	LeaderTerms metrics.Counter // distinct terms that produced a leader

	// Snapshot catch-up activity (final member lives only; restarts
	// reset a node's counters, so these are lower bounds).
	SnapshotInstalls metrics.Counter
	SnapshotChunks   metrics.Counter

	// Workload.
	Writes       metrics.Counter
	WriteErrors  metrics.Counter
	Reads        metrics.Counter
	ReadErrors   metrics.Counter
	LeaseReads   metrics.Counter // lease-level reads witnessed
	LinReads     metrics.Counter // linearizable-level reads witnessed
	FallbackObs  metrics.Counter // lease reads that fell back to ReadIndex
	WriteLatency *metrics.Histogram

	// WritePath aggregates the write-path stage histograms across every
	// member tracer at run end (final lives only; restarts keep the
	// member registry, so counts span the whole run). Keyed by stage
	// name, in the internal/trace taxonomy.
	WritePath map[string]metrics.Summary
}

func newStats() *Stats {
	return &Stats{
		DropsPerLife: metrics.NewIntHistogram(),
		WriteLatency: metrics.NewHistogram(),
		WritePath:    make(map[string]metrics.Summary),
	}
}

// String renders the full per-run summary, one line per group.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults   : crashes=%d restarts=%d partitions=%d net-heals=%d rules=%d fsync-stalls=%d fsync-fails=%d skews=%d purges=%d\n",
		s.Crashes.Value(), s.Restarts.Value(), s.Partitions.Value(), s.NetHeals.Value(),
		s.FaultRules.Value(), s.FsyncStalls.Value(), s.FsyncFails.Value(), s.SkewChanges.Value(), s.Purges.Value())
	fmt.Fprintf(&b, "messages : dropped=%d delayed=%d duplicated=%d drops/life=%s\n",
		s.MsgDropped.Value(), s.MsgDelayed.Value(), s.MsgDuplicated.Value(), s.DropsPerLife)
	fmt.Fprintf(&b, "raft     : elections=%d leader-terms=%d snapshot-installs=%d snapshot-chunks=%d\n",
		s.Elections.Value(), s.LeaderTerms.Value(), s.SnapshotInstalls.Value(), s.SnapshotChunks.Value())
	fmt.Fprintf(&b, "workload : writes=%d write-errs=%d reads=%d read-errs=%d lin=%d lease=%d fallbacks=%d write-latency=%s",
		s.Writes.Value(), s.WriteErrors.Value(), s.Reads.Value(), s.ReadErrors.Value(),
		s.LinReads.Value(), s.LeaseReads.Value(), s.FallbackObs.Value(), s.WriteLatency)
	if len(s.WritePath) > 0 {
		b.WriteString("\ntracing  :")
		for _, st := range trace.Stages() {
			sum, ok := s.WritePath[st.String()]
			if !ok || sum.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, " %s=%d/p99=%s", st, sum.Count, sum.P99)
		}
	}
	return b.String()
}
