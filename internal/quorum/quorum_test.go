package quorum

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"myraft/internal/wire"
)

// paperTopology builds the evaluation topology of §6.1: a primary region
// with one MySQL and two logtailers, five follower regions with one MySQL
// and two logtailers each, and two learner (non-voting) members.
func paperTopology() wire.Config {
	var c wire.Config
	for r := 0; r < 6; r++ {
		region := wire.Region(fmt.Sprintf("region-%d", r))
		c.Members = append(c.Members, wire.Member{
			ID: wire.NodeID(fmt.Sprintf("mysql-%d", r)), Region: region, Voter: true,
		})
		for l := 0; l < 2; l++ {
			c.Members = append(c.Members, wire.Member{
				ID:     wire.NodeID(fmt.Sprintf("lt-%d-%d", r, l)),
				Region: region, Voter: true, Witness: true,
			})
		}
	}
	c.Members = append(c.Members,
		wire.Member{ID: "learner-0", Region: "region-1", Voter: false},
		wire.Member{ID: "learner-1", Region: "region-2", Voter: false},
	)
	return c
}

func acks(ids ...wire.NodeID) map[wire.NodeID]bool {
	m := make(map[wire.NodeID]bool)
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestMajorityDataCommit(t *testing.T) {
	cfg := paperTopology() // 18 voters, majority = 10
	s := Majority{}
	a := acks()
	for r := 0; r < 3; r++ {
		a[wire.NodeID(fmt.Sprintf("mysql-%d", r))] = true
		a[wire.NodeID(fmt.Sprintf("lt-%d-0", r))] = true
		a[wire.NodeID(fmt.Sprintf("lt-%d-1", r))] = true
	}
	if s.DataCommitSatisfied(cfg, "region-0", a) {
		t.Fatal("9/18 voters satisfied majority")
	}
	a["mysql-3"] = true
	if !s.DataCommitSatisfied(cfg, "region-0", a) {
		t.Fatal("10/18 voters did not satisfy majority")
	}
}

func TestMajorityIgnoresLearners(t *testing.T) {
	cfg := paperTopology()
	s := Majority{}
	a := acks("learner-0", "learner-1")
	for r := 0; r < 3; r++ {
		a[wire.NodeID(fmt.Sprintf("mysql-%d", r))] = true
		a[wire.NodeID(fmt.Sprintf("lt-%d-0", r))] = true
		a[wire.NodeID(fmt.Sprintf("lt-%d-1", r))] = true
	}
	// 9 voters + 2 learners: learners must not count.
	if s.DataCommitSatisfied(cfg, "region-0", a) {
		t.Fatal("learner acks counted toward quorum")
	}
}

func TestSingleRegionDynamicDataCommit(t *testing.T) {
	cfg := paperTopology()
	s := SingleRegionDynamic{}
	// Leader in region-0: self-vote plus one in-region logtailer = 2 of 3.
	if !s.DataCommitSatisfied(cfg, "region-0", acks("mysql-0", "lt-0-0")) {
		t.Fatal("in-region 2/3 did not commit")
	}
	// One ack alone does not.
	if s.DataCommitSatisfied(cfg, "region-0", acks("mysql-0")) {
		t.Fatal("1/3 committed")
	}
	// Out-of-region acks are irrelevant.
	a := acks("mysql-0", "mysql-1", "mysql-2", "mysql-3", "mysql-4", "mysql-5")
	if s.DataCommitSatisfied(cfg, "region-0", a) {
		t.Fatal("out-of-region acks committed an in-region quorum")
	}
}

func TestSingleRegionDynamicElection(t *testing.T) {
	cfg := paperTopology()
	s := SingleRegionDynamic{}
	// Candidate in region-1, last leader in region-0: needs majorities of
	// both regions.
	v := acks("mysql-1", "lt-1-0")
	if s.ElectionSatisfied(cfg, "region-1", "region-0", v) {
		t.Fatal("elected without last-leader-region majority")
	}
	v["lt-0-0"] = true
	v["lt-0-1"] = true
	if !s.ElectionSatisfied(cfg, "region-1", "region-0", v) {
		t.Fatal("both-region majorities did not elect")
	}
	// Same-region succession: candidate in the last leader's region only
	// needs that one region.
	if !s.ElectionSatisfied(cfg, "region-0", "region-0", acks("lt-0-0", "lt-0-1")) {
		t.Fatal("same-region succession failed")
	}
}

func TestSingleRegionDynamicElectionUnknownHistory(t *testing.T) {
	cfg := paperTopology()
	s := SingleRegionDynamic{}
	// Unknown last leader: needs a majority of every region.
	v := make(map[wire.NodeID]bool)
	for r := 0; r < 6; r++ {
		v[wire.NodeID(fmt.Sprintf("mysql-%d", r))] = true
		v[wire.NodeID(fmt.Sprintf("lt-%d-0", r))] = true
	}
	if !s.ElectionSatisfied(cfg, "region-0", "", v) {
		t.Fatal("all-region majorities did not elect with unknown history")
	}
	delete(v, "mysql-5")
	delete(v, "lt-5-0")
	if s.ElectionSatisfied(cfg, "region-0", "", v) {
		t.Fatal("elected with a region lacking majority and unknown history")
	}
}

func TestStaticAnyRegion(t *testing.T) {
	cfg := paperTopology()
	s := StaticAnyRegion{}
	// Any single region majority commits.
	if !s.DataCommitSatisfied(cfg, "", acks("mysql-3", "lt-3-1")) {
		t.Fatal("region-3 majority did not commit")
	}
	// Election needs every region.
	v := make(map[wire.NodeID]bool)
	for r := 0; r < 5; r++ {
		v[wire.NodeID(fmt.Sprintf("mysql-%d", r))] = true
		v[wire.NodeID(fmt.Sprintf("lt-%d-0", r))] = true
	}
	if s.ElectionSatisfied(cfg, "", "", v) {
		t.Fatal("elected while region-5 had no majority")
	}
	v["mysql-5"] = true
	v["lt-5-0"] = true
	if !s.ElectionSatisfied(cfg, "", "", v) {
		t.Fatal("all-region majorities did not elect")
	}
}

func TestGrid(t *testing.T) {
	cfg := paperTopology() // 6 regions; grid needs majorities in 4
	s := Grid{}
	v := make(map[wire.NodeID]bool)
	for r := 0; r < 3; r++ {
		v[wire.NodeID(fmt.Sprintf("mysql-%d", r))] = true
		v[wire.NodeID(fmt.Sprintf("lt-%d-0", r))] = true
	}
	if s.DataCommitSatisfied(cfg, "", v) {
		t.Fatal("3/6 region majorities satisfied grid")
	}
	v["mysql-3"] = true
	v["lt-3-0"] = true
	if !s.DataCommitSatisfied(cfg, "", v) {
		t.Fatal("4/6 region majorities did not satisfy grid")
	}
}

func TestEmptyConfigNeverSatisfied(t *testing.T) {
	var cfg wire.Config
	all := acks("ghost")
	for _, s := range []Strategy{Majority{}, StaticAnyRegion{}, SingleRegionDynamic{}, Grid{}} {
		if s.DataCommitSatisfied(cfg, "r", all) {
			t.Errorf("%s: empty config committed", s.Name())
		}
		if s.ElectionSatisfied(cfg, "r", "r", all) {
			t.Errorf("%s: empty config elected", s.Name())
		}
	}
}

func TestCommittedIndexMajority(t *testing.T) {
	cfg := wire.Config{Members: []wire.Member{
		{ID: "a", Region: "r1", Voter: true},
		{ID: "b", Region: "r1", Voter: true},
		{ID: "c", Region: "r2", Voter: true},
		{ID: "d", Region: "r2", Voter: true},
		{ID: "e", Region: "r3", Voter: true},
	}}
	match := map[wire.NodeID]uint64{"a": 10, "b": 7, "c": 5, "d": 3, "e": 1}
	if got := CommittedIndex(Majority{}, cfg, "r1", match); got != 5 {
		t.Fatalf("majority committed index = %d, want 5 (median)", got)
	}
}

func TestCommittedIndexSingleRegionDynamic(t *testing.T) {
	cfg := wire.Config{Members: []wire.Member{
		{ID: "leader", Region: "r1", Voter: true},
		{ID: "lt1", Region: "r1", Voter: true, Witness: true},
		{ID: "lt2", Region: "r1", Voter: true, Witness: true},
		{ID: "remote", Region: "r2", Voter: true},
	}}
	match := map[wire.NodeID]uint64{"leader": 100, "lt1": 99, "lt2": 4, "remote": 2}
	if got := CommittedIndex(SingleRegionDynamic{}, cfg, "r1", match); got != 99 {
		t.Fatalf("committed = %d, want 99 (in-region 2/3)", got)
	}
	// Without the logtailer, commit stalls at the slowest in-region pair.
	match["lt1"] = 0
	if got := CommittedIndex(SingleRegionDynamic{}, cfg, "r1", match); got != 4 {
		t.Fatalf("committed = %d, want 4", got)
	}
}

func TestCommittedIndexEmptyMatch(t *testing.T) {
	cfg := paperTopology()
	if got := CommittedIndex(Majority{}, cfg, "region-0", nil); got != 0 {
		t.Fatalf("empty match committed %d", got)
	}
}

func TestRegionWatermarks(t *testing.T) {
	cfg := wire.Config{Members: []wire.Member{
		{ID: "a", Region: "r1", Voter: true},
		{ID: "b", Region: "r1", Voter: true, Witness: true},
		{ID: "c", Region: "r1", Voter: true, Witness: true},
		{ID: "d", Region: "r2", Voter: true},
		{ID: "e", Region: "r2", Voter: true, Witness: true},
	}}
	match := map[wire.NodeID]uint64{"a": 10, "b": 8, "c": 2, "d": 5, "e": 3}
	w := RegionWatermarks(cfg, match)
	if w["r1"] != 8 {
		t.Fatalf("r1 watermark = %d, want 8", w["r1"])
	}
	if w["r2"] != 3 {
		t.Fatalf("r2 watermark = %d, want 3", w["r2"])
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"majority", "single-region-dynamic", "static-any-region", "grid"} {
		if got := ByName(name).Name(); got != name {
			t.Errorf("ByName(%q).Name() = %q", name, got)
		}
	}
	if ByName("bogus").Name() != "majority" {
		t.Error("unknown name did not default to majority")
	}
}

// randomSubset picks each voter with probability p.
func randomSubset(cfg wire.Config, rng *rand.Rand, p float64) map[wire.NodeID]bool {
	s := make(map[wire.NodeID]bool)
	for _, m := range cfg.Voters() {
		if rng.Float64() < p {
			s[m.ID] = true
		}
	}
	return s
}

func intersects(a, b map[wire.NodeID]bool) bool {
	for id := range a {
		if b[id] {
			return true
		}
	}
	return false
}

// TestQuorumIntersectionProperty verifies the safety-critical invariant:
// for every strategy, any satisfied election quorum intersects any
// satisfied data-commit quorum of the last known leader. For
// SingleRegionDynamic the data quorum region is the last leader's region;
// for the others the invariant must hold for every leader region.
func TestQuorumIntersectionProperty(t *testing.T) {
	cfg := paperTopology()
	regions := cfg.Regions()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, s := range []Strategy{Majority{}, StaticAnyRegion{}, SingleRegionDynamic{}, Grid{}} {
			leaderRegion := regions[rng.Intn(len(regions))]
			candidateRegion := regions[rng.Intn(len(regions))]
			dataQ := randomSubset(cfg, rng, 0.3+rng.Float64()*0.7)
			electQ := randomSubset(cfg, rng, 0.3+rng.Float64()*0.7)
			if !s.DataCommitSatisfied(cfg, leaderRegion, dataQ) {
				continue
			}
			if !s.ElectionSatisfied(cfg, candidateRegion, leaderRegion, electQ) {
				continue
			}
			if !intersects(dataQ, electQ) {
				t.Logf("%s: disjoint data quorum (leader %s) and election quorum (candidate %s)",
					s.Name(), leaderRegion, candidateRegion)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoElectionQuorumsShareLastLeaderRegion verifies election safety for
// SingleRegionDynamic: two elections with the same last-known leader both
// need that region's majority, so they intersect and cannot both win the
// same term.
func TestTwoElectionQuorumsShareLastLeaderRegion(t *testing.T) {
	cfg := paperTopology()
	regions := cfg.Regions()
	s := SingleRegionDynamic{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		last := regions[rng.Intn(len(regions))]
		c1 := regions[rng.Intn(len(regions))]
		c2 := regions[rng.Intn(len(regions))]
		q1 := randomSubset(cfg, rng, 0.5)
		q2 := randomSubset(cfg, rng, 0.5)
		if s.ElectionSatisfied(cfg, c1, last, q1) && s.ElectionSatisfied(cfg, c2, last, q2) {
			return intersects(q1, q2)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCommittedIndexMonotoneProperty: raising any match index never
// lowers the committed index.
func TestCommittedIndexMonotoneProperty(t *testing.T) {
	cfg := paperTopology()
	voters := cfg.Voters()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, s := range []Strategy{Majority{}, SingleRegionDynamic{}, Grid{}} {
			match := make(map[wire.NodeID]uint64)
			for _, m := range voters {
				match[m.ID] = uint64(rng.Intn(100))
			}
			before := CommittedIndex(s, cfg, "region-0", match)
			// Raise one random voter.
			v := voters[rng.Intn(len(voters))]
			match[v.ID] += uint64(rng.Intn(50))
			after := CommittedIndex(s, cfg, "region-0", match)
			if after < before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
