// Package quorum implements the quorum strategies of FlexiRaft (§4.1 of
// the paper). Vanilla Raft uses a simple majority of voters for both data
// commits and leader elections. FlexiRaft instead defines quorums in terms
// of majorities within disjoint groups of members — geographical regions —
// trading fault tolerance for dramatically lower commit latency.
//
// The strategy consulted for a data commit is parameterized by the current
// leader's region; the strategy consulted for an election additionally
// needs the region of the last known leader, because election quorums must
// intersect every data-commit quorum a previous leader may have used.
package quorum

import (
	"sort"

	"myraft/internal/wire"
)

// Strategy decides when acknowledgement sets satisfy data-commit and
// leader-election quorums.
type Strategy interface {
	// Name identifies the strategy in logs and benchmarks.
	Name() string
	// DataCommitSatisfied reports whether the set of acknowledging voters
	// (including the leader's self-vote) commits a log entry, for a
	// leader in leaderRegion.
	DataCommitSatisfied(cfg wire.Config, leaderRegion wire.Region, acks map[wire.NodeID]bool) bool
	// ElectionSatisfied reports whether the set of granted votes elects a
	// candidate in candidateRegion, given the region of the last known
	// leader ("" when unknown).
	ElectionSatisfied(cfg wire.Config, candidateRegion, lastLeaderRegion wire.Region, votes map[wire.NodeID]bool) bool
}

// countAcked returns how many of the members are in the ack set.
func countAcked(members []wire.Member, acks map[wire.NodeID]bool) int {
	n := 0
	for _, m := range members {
		if acks[m.ID] {
			n++
		}
	}
	return n
}

// hasMajority reports whether acks covers a strict majority of members.
// An empty member list is unsatisfiable, never vacuously true: a quorum
// that nobody can vote in must not commit anything.
func hasMajority(members []wire.Member, acks map[wire.NodeID]bool) bool {
	if len(members) == 0 {
		return false
	}
	return countAcked(members, acks) >= len(members)/2+1
}

// Majority is vanilla Raft: a strict majority of all voters for both data
// commits and elections.
type Majority struct{}

// Name implements Strategy.
func (Majority) Name() string { return "majority" }

// DataCommitSatisfied implements Strategy.
func (Majority) DataCommitSatisfied(cfg wire.Config, _ wire.Region, acks map[wire.NodeID]bool) bool {
	return hasMajority(cfg.Voters(), acks)
}

// ElectionSatisfied implements Strategy.
func (Majority) ElectionSatisfied(cfg wire.Config, _, _ wire.Region, votes map[wire.NodeID]bool) bool {
	return hasMajority(cfg.Voters(), votes)
}

// StaticAnyRegion is the flexible-quorum construction the paper rejects
// (§4.1): a data commit needs a majority in any one region, so an election
// must collect a majority in every region — any single region's disruption
// blocks elections. It is implemented as a baseline for the quorum-mode
// ablation.
type StaticAnyRegion struct{}

// Name implements Strategy.
func (StaticAnyRegion) Name() string { return "static-any-region" }

// DataCommitSatisfied implements Strategy.
func (StaticAnyRegion) DataCommitSatisfied(cfg wire.Config, _ wire.Region, acks map[wire.NodeID]bool) bool {
	for _, r := range cfg.Regions() {
		if hasMajority(cfg.VotersInRegion(r), acks) {
			return true
		}
	}
	return false
}

// ElectionSatisfied implements Strategy.
func (StaticAnyRegion) ElectionSatisfied(cfg wire.Config, _, _ wire.Region, votes map[wire.NodeID]bool) bool {
	regions := cfg.Regions()
	if len(regions) == 0 {
		return false
	}
	for _, r := range regions {
		if !hasMajority(cfg.VotersInRegion(r), votes) {
			return false
		}
	}
	return true
}

// SingleRegionDynamic is FlexiRaft's production mode (§4.1): the data
// commit quorum is a majority of the voters in the current leader's
// region, so commits complete at intra-region latency. The quorum moves
// with the leader ("dynamic"). An election quorum must intersect the last
// data quorum, so a candidate needs a majority of its own region (its
// future data quorum) and a majority of the last known leader's region.
// When the last leader is unknown (fresh cluster, lost state), it falls
// back to a majority of every region, which intersects any possible prior
// data quorum.
type SingleRegionDynamic struct{}

// Name implements Strategy.
func (SingleRegionDynamic) Name() string { return "single-region-dynamic" }

// DataCommitSatisfied implements Strategy.
func (SingleRegionDynamic) DataCommitSatisfied(cfg wire.Config, leaderRegion wire.Region, acks map[wire.NodeID]bool) bool {
	return hasMajority(cfg.VotersInRegion(leaderRegion), acks)
}

// ElectionSatisfied implements Strategy.
func (SingleRegionDynamic) ElectionSatisfied(cfg wire.Config, candidateRegion, lastLeaderRegion wire.Region, votes map[wire.NodeID]bool) bool {
	if !hasMajority(cfg.VotersInRegion(candidateRegion), votes) {
		return false
	}
	if lastLeaderRegion == "" {
		// Unknown history: intersect every possible prior data quorum.
		for _, r := range cfg.Regions() {
			if !hasMajority(cfg.VotersInRegion(r), votes) {
				return false
			}
		}
		return true
	}
	return hasMajority(cfg.VotersInRegion(lastLeaderRegion), votes)
}

// Grid requires region-majorities in a majority of regions for both data
// commits and elections. Two such quorums always intersect (two majorities
// of regions share a region, and two majorities within that region share a
// member), making Grid self-intersecting without leader-region tracking.
// It is the "multi-region commit quorum" configuration mentioned in §4.1
// for applications choosing consistency over latency.
type Grid struct{}

// Name implements Strategy.
func (Grid) Name() string { return "grid" }

func gridSatisfied(cfg wire.Config, acks map[wire.NodeID]bool) bool {
	regions := cfg.Regions()
	if len(regions) == 0 {
		return false
	}
	n := 0
	for _, r := range regions {
		if hasMajority(cfg.VotersInRegion(r), acks) {
			n++
		}
	}
	return n >= len(regions)/2+1
}

// DataCommitSatisfied implements Strategy.
func (Grid) DataCommitSatisfied(cfg wire.Config, _ wire.Region, acks map[wire.NodeID]bool) bool {
	return gridSatisfied(cfg, acks)
}

// ElectionSatisfied implements Strategy.
func (Grid) ElectionSatisfied(cfg wire.Config, _, _ wire.Region, votes map[wire.NodeID]bool) bool {
	return gridSatisfied(cfg, votes)
}

// CommittedIndex returns the highest log index whose acknowledgement set
// satisfies the data-commit quorum, given each voter's match index (the
// highest entry known replicated to it, with the leader's own last index
// included). It works for any Strategy by testing candidate indexes in
// descending order.
func CommittedIndex(s Strategy, cfg wire.Config, leaderRegion wire.Region, match map[wire.NodeID]uint64) uint64 {
	// Candidate committed indexes are exactly the distinct match values.
	values := make([]uint64, 0, len(match))
	seen := make(map[uint64]bool, len(match))
	for _, v := range match {
		if v > 0 && !seen[v] {
			seen[v] = true
			values = append(values, v)
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] > values[j] })
	for _, v := range values {
		acks := make(map[wire.NodeID]bool, len(match))
		for id, m := range match {
			if m >= v {
				acks[id] = true
			}
		}
		if s.DataCommitSatisfied(cfg, leaderRegion, acks) {
			return v
		}
	}
	return 0
}

// RegionWatermarks returns, per region, the highest index replicated to a
// majority of that region's voters. FlexiRaft maintains these watermarks
// to commit from the in-region quorum (§4.1) and to gate log purging until
// entries have been shipped out of region (§A.1).
func RegionWatermarks(cfg wire.Config, match map[wire.NodeID]uint64) map[wire.Region]uint64 {
	out := make(map[wire.Region]uint64)
	for _, r := range cfg.Regions() {
		voters := cfg.VotersInRegion(r)
		idxs := make([]uint64, 0, len(voters))
		for _, m := range voters {
			idxs = append(idxs, match[m.ID])
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
		need := len(voters)/2 + 1
		if need <= len(idxs) {
			out[r] = idxs[need-1]
		}
	}
	return out
}

// ByName returns the strategy with the given Name, defaulting to Majority
// for unknown names.
func ByName(name string) Strategy {
	switch name {
	case "single-region-dynamic":
		return SingleRegionDynamic{}
	case "static-any-region":
		return StaticAnyRegion{}
	case "grid":
		return Grid{}
	default:
		return Majority{}
	}
}
