// Package multiraft hosts many raft rings (shards) in one process, the
// way the paper's fleet runs MyRaft: each MySQL shard is an independent
// replicaset, but a node carries dozens of them, so per-shard costs —
// heartbeat timers, fsync schedules, purge scans, transport endpoints —
// must be shared per node, not multiplied per ring.
//
// The runtime stacks four mechanisms on the single-ring cluster package:
//
//   - one transport endpoint per node, multiplexed across shards by a
//     transport.Demux speaking the wire.ShardEnvelope frame;
//   - heartbeat coalescing in that demux: one physical message per
//     (node, peer) pair per interval carries every co-located shard
//     leader's heartbeat, collapsing O(shards × peers) messages into
//     O(peers);
//   - a shared-resource layer per node: one SyncGroup funneling every
//     shard's log-writer fsync, and one retention scheduler driving every
//     shard's snapshot/purge cycle;
//   - a Router mapping keys to shards over reloadable hash-range tables,
//     and a leader balancer spreading shard leaders across up nodes.
package multiraft

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"myraft/internal/clock"
	"myraft/internal/cluster"
	"myraft/internal/discovery"
	"myraft/internal/metrics"
	"myraft/internal/raft"
	"myraft/internal/transport"
	"myraft/internal/wire"
)

// Options configures a multi-shard runtime.
type Options struct {
	// Shards is the number of raft rings hosted by the process set.
	Shards int
	// Specs is the per-shard member topology. Every shard gets the same
	// node set — the paper's deployment unit is a host carrying one
	// mysqld per shard — so node IDs here name processes, and each shard
	// ring stretches across all of them.
	Specs []cluster.MemberSpec
	// Name prefixes shard replicaset names in service discovery
	// (default "multiraft"; shard s registers as "<name>/shard-<s>").
	Name string
	// Dir is the root state directory (a subdirectory per shard). A temp
	// directory is created when empty.
	Dir string
	// Raft is the per-node config template, applied to every shard.
	Raft raft.Config
	// NetConfig configures the shared network.
	NetConfig transport.Config
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Seed seeds network jitter for reproducible runs.
	Seed int64
	// Table is the initial routing table (default UniformTable(Shards)).
	Table Table
	// TraceSampleEvery is each shard cluster's write-path trace sampling
	// rate (see cluster.Options.TraceSampleEvery). A many-shard process
	// usually wants n > 1: the per-txn cost is small but exists, and the
	// histograms converge quickly even at 1-in-16.
	TraceSampleEvery int
	// CommitPipelineDepth is each shard's primary commit pipeline depth
	// (see cluster.Options.CommitPipelineDepth): 0 keeps the mysql
	// default, 1 forces the serial pipeline.
	CommitPipelineDepth int
	// DisableCoalescing turns off heartbeat coalescing: every shard
	// heartbeat crosses in its own envelope (the per-shard fallback, and
	// the baseline for the coalescing experiments).
	DisableCoalescing bool
	// OnRoleChange, when set, observes every role transition on every
	// shard (the chaos harness checks election safety per shard with it).
	OnRoleChange func(shard wire.ShardID, rc raft.RoleChange)
	// WrapLogStore, when set, wraps each member's log store before the
	// shared per-node SyncGroup does (fault injection, modeled device
	// latency). The sync group always stays outermost so every shard's
	// fsyncs still funnel through one worker per node.
	WrapLogStore func(id wire.NodeID, store raft.LogStore) raft.LogStore
}

// Runtime is a running multi-shard process set. It is the process
// runtime: cluster.Cluster is the per-ring building block underneath it,
// and a single-ring deployment is simply Shards: 1.
type Runtime struct {
	opts     Options
	net      *transport.Network
	registry *discovery.Registry
	clk      clock.Clock
	demuxes  map[wire.NodeID]*transport.Demux
	syncs    map[wire.NodeID]*SyncGroup
	router   *Router
	reg      *metrics.Registry
	nodeRegs map[wire.NodeID]*metrics.Registry

	mu     sync.RWMutex
	shards []*cluster.Cluster
	down   map[wire.NodeID]bool

	// gate tracks in-flight routed writes per routing-table version so a
	// split can drain every write admitted under a pre-fence table before
	// taking its copy snapshot (see split.go).
	gate writeGate

	// splitMu serializes topology changes (AddShard/Split).
	splitMu sync.Mutex

	staleRejects atomic.Int64
	fenceWaits   atomic.Int64
	splits       atomic.Int64
}

// writeGate counts in-flight routed writes keyed by the table version
// they were admitted under. Writers increment before revalidating their
// route, so after a Reload every write still running under an older
// version is visible to drainBelow — the ordering that makes the split's
// fence sound.
type writeGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inflight map[uint64]int
}

func (g *writeGate) enter(version uint64) func() {
	g.mu.Lock()
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
		g.inflight = make(map[uint64]int)
	}
	g.inflight[version]++
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inflight[version]--
			if g.inflight[version] <= 0 {
				delete(g.inflight, version)
			}
			g.cond.Broadcast()
			g.mu.Unlock()
		})
	}
}

// drainBelow blocks until no write admitted under a table version older
// than the given one remains in flight. Writes admitted under the fenced
// table itself (or newer) keep flowing — only the moved subrange is
// fenced, and its writers can no longer be admitted at all.
func (g *writeGate) drainBelow(ctx context.Context, version uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cond == nil {
		return nil
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			g.cond.Broadcast()
		case <-done:
		}
	}()
	for {
		older := 0
		for v, n := range g.inflight {
			if v < version {
				older += n
			}
		}
		if older == 0 {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		g.cond.Wait()
	}
}

// New builds and starts every shard ring. No leaders exist until
// Bootstrap (or election timeouts) elect them.
func New(opts Options) (*Runtime, error) {
	if opts.Shards <= 0 {
		return nil, fmt.Errorf("multiraft: Shards must be positive")
	}
	if len(opts.Specs) == 0 {
		return nil, fmt.Errorf("multiraft: no member specs")
	}
	if opts.Name == "" {
		opts.Name = "multiraft"
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "myraft-multiraft-")
		if err != nil {
			return nil, fmt.Errorf("multiraft: %w", err)
		}
		opts.Dir = dir
	}
	if len(opts.Table.Ranges) == 0 {
		opts.Table = UniformTable(opts.Shards)
	}
	router, err := NewRouter(opts.Table, opts.Shards)
	if err != nil {
		return nil, err
	}

	netCfg := opts.NetConfig
	if netCfg.Seed == 0 {
		netCfg.Seed = opts.Seed
	}
	rt := &Runtime{
		opts:     opts,
		net:      transport.New(netCfg, opts.Clock),
		registry: discovery.NewRegistry(),
		clk:      opts.Clock,
		demuxes:  make(map[wire.NodeID]*transport.Demux),
		syncs:    make(map[wire.NodeID]*SyncGroup),
		router:   router,
		reg:      metrics.NewRegistry(),
		nodeRegs: make(map[wire.NodeID]*metrics.Registry),
		down:     make(map[wire.NodeID]bool),
	}

	// One endpoint + demux + fsync group per node, shared by every shard.
	hb := opts.Raft.HeartbeatInterval
	if hb == 0 {
		hb = 500 * time.Millisecond
	}
	flush := hb
	if opts.DisableCoalescing {
		flush = 0
	}
	for _, spec := range opts.Specs {
		if _, ok := rt.demuxes[spec.ID]; ok {
			rt.Close()
			return nil, fmt.Errorf("multiraft: duplicate member %s", spec.ID)
		}
		ep := rt.net.Register(spec.ID, spec.Region)
		rt.demuxes[spec.ID] = transport.NewDemux(ep, opts.Clock, transport.DemuxConfig{FlushInterval: flush})
		rt.syncs[spec.ID] = NewSyncGroup()
		rt.nodeRegs[spec.ID] = metrics.NewRegistry()
	}

	for s := 0; s < opts.Shards; s++ {
		c, err := rt.newShardCluster(wire.ShardID(s))
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("multiraft: shard %d: %w", s, err)
		}
		rt.shards = append(rt.shards, c)
	}
	rt.reg.Gauge("shards_hosted").Set(int64(opts.Shards))
	return rt, nil
}

// newShardCluster assembles one shard's ring over the shared per-node
// demuxes and fsync groups. Every node's port for the shard is created up
// front, before any member starts, so no early vote or heartbeat can be
// dropped as an unknown-shard leak.
func (rt *Runtime) newShardCluster(shard wire.ShardID) (*cluster.Cluster, error) {
	for _, d := range rt.demuxes {
		d.Shard(shard)
	}
	rcfg := rt.opts.Raft
	if rt.opts.OnRoleChange != nil {
		hook := rt.opts.OnRoleChange
		rcfg.OnRoleChange = func(rc raft.RoleChange) { hook(shard, rc) }
	}
	return cluster.New(cluster.Options{
		Name:     rt.ShardName(shard),
		Dir:      filepath.Join(rt.opts.Dir, fmt.Sprintf("shard-%d", shard)),
		Raft:     rcfg,
		Net:      rt.net,
		Registry: rt.registry,
		Clock:    rt.opts.Clock,
		Seed:     rt.opts.Seed,

		TraceSampleEvery:    rt.opts.TraceSampleEvery,
		CommitPipelineDepth: rt.opts.CommitPipelineDepth,
		Transport: func(id wire.NodeID, _ wire.Region) transport.Transport {
			return rt.demuxes[id].Shard(shard)
		},
		WrapLogStore: func(id wire.NodeID, store raft.LogStore) raft.LogStore {
			if rt.opts.WrapLogStore != nil {
				store = rt.opts.WrapLogStore(id, store)
			}
			return rt.syncs[id].Wrap(store)
		},
	}, rt.opts.Specs)
}

// Name returns the runtime's name prefix.
func (rt *Runtime) Name() string { return rt.opts.Name }

// ShardName returns the discovery name of one shard's replicaset.
func (rt *Runtime) ShardName(shard wire.ShardID) string {
	return fmt.Sprintf("%s/shard-%d", rt.opts.Name, shard)
}

// Shards returns the number of hosted shards.
func (rt *Runtime) Shards() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.shards)
}

// Shard returns one shard's cluster (nil for unknown shards).
func (rt *Runtime) Shard(id wire.ShardID) *cluster.Cluster {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if int(id) >= len(rt.shards) {
		return nil
	}
	return rt.shards[id]
}

// shardList snapshots the shard slice under the lock; a split may append
// a new ring at any time.
func (rt *Runtime) shardList() []*cluster.Cluster {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]*cluster.Cluster(nil), rt.shards...)
}

// Router returns the key→shard router.
func (rt *Runtime) Router() *Router { return rt.router }

// Net returns the shared network (fault injection, stats).
func (rt *Runtime) Net() *transport.Network { return rt.net }

// Registry returns the shared discovery registry.
func (rt *Runtime) Registry() *discovery.Registry { return rt.registry }

// Demux returns one node's shard demultiplexer (nil for unknown nodes).
func (rt *Runtime) Demux(id wire.NodeID) *transport.Demux { return rt.demuxes[id] }

// SyncGroup returns one node's shared fsync group (nil for unknown
// nodes).
func (rt *Runtime) SyncGroup(id wire.NodeID) *SyncGroup { return rt.syncs[id] }

// Nodes returns the node IDs in spec order.
func (rt *Runtime) Nodes() []wire.NodeID {
	out := make([]wire.NodeID, 0, len(rt.opts.Specs))
	for _, s := range rt.opts.Specs {
		out = append(out, s.ID)
	}
	return out
}

// Bootstrap elects an initial leader for every shard, spreading them
// round-robin across the MySQL voter nodes, and waits until each shard
// has a published primary. Shards bootstrap concurrently — a 16-shard
// process must not pay 16 sequential election waits.
func (rt *Runtime) Bootstrap(ctx context.Context) error {
	var voters []wire.NodeID
	for _, s := range rt.opts.Specs {
		if s.Kind == cluster.KindMySQL && s.Voter {
			voters = append(voters, s.ID)
		}
	}
	if len(voters) == 0 {
		return fmt.Errorf("multiraft: no MySQL voters to bootstrap")
	}
	shards := rt.shardList()
	errs := make(chan error, len(shards))
	for s, c := range shards {
		go func(c *cluster.Cluster, at wire.NodeID) {
			errs <- c.Bootstrap(ctx, at)
		}(c, voters[s%len(voters)])
	}
	for range shards {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// ShardStatus is one shard's row in the /shards rollup.
type ShardStatus struct {
	Shard        wire.ShardID `json:"shard"`
	Name         string       `json:"name"`
	Leader       wire.NodeID  `json:"leader,omitempty"`
	Term         uint64       `json:"term"`
	CommitIndex  uint64       `json:"commit_index"`
	DurableIndex uint64       `json:"durable_index"`
	PurgeFloor   uint64       `json:"purge_floor"`
}

// ShardStatuses surveys every shard: its leader (empty while none is
// claiming), term, commit/durable progress and purge floor.
func (rt *Runtime) ShardStatuses() []ShardStatus {
	shards := rt.shardList()
	out := make([]ShardStatus, 0, len(shards))
	for s, c := range shards {
		st := ShardStatus{
			Shard:      wire.ShardID(s),
			Name:       rt.ShardName(wire.ShardID(s)),
			PurgeFloor: c.PurgeFloor(),
		}
		if leader := c.Leader(); leader != nil && leader.Node() != nil {
			ns := leader.Node().Status()
			st.Leader = ns.ID
			st.Term = ns.Term
			st.CommitIndex = ns.CommitIndex
			st.DurableIndex = ns.DurableIndex
		}
		out = append(out, st)
	}
	return out
}

// LeadersByNode groups shard leadership by hosting node. Leaderless
// shards are absent.
func (rt *Runtime) LeadersByNode() map[wire.NodeID][]wire.ShardID {
	out := make(map[wire.NodeID][]wire.ShardID)
	for _, st := range rt.ShardStatuses() {
		if st.Leader != "" {
			out[st.Leader] = append(out[st.Leader], st.Shard)
		}
	}
	return out
}

// Metrics refreshes and returns the runtime-scope instrument registry:
// shard count, routing-table generation, and the routed-write cutover
// counters (stale rejections, fence waits, completed splits). Per-node
// gauges live in NodeRegistries — the exporter renders them as one
// labeled family per metric, never a metric name per node (colons and
// node IDs are not legal in Prometheus metric names).
func (rt *Runtime) Metrics() *metrics.Registry {
	rt.reg.Gauge("shards_hosted").Set(int64(rt.Shards()))
	rt.reg.Gauge("router_table_version").Set(int64(rt.router.Version()))
	rt.reg.Gauge("router_stale_rejects").Set(rt.staleRejects.Load())
	rt.reg.Gauge("router_fence_waits").Set(rt.fenceWaits.Load())
	rt.reg.Gauge("shard_splits_total").Set(rt.splits.Load())
	return rt.reg
}

// NodeRegistry pairs one node with its shared-resource instrument
// registry (leaders held, heartbeat-coalescing traffic, demux drops,
// fsync funnel counters). The admin exporter attaches a node label to
// each, so the families stay properly named across the fleet.
type NodeRegistry struct {
	ID  wire.NodeID
	Reg *metrics.Registry
}

// NodeRegistries refreshes and returns every node's registry in spec
// order.
func (rt *Runtime) NodeRegistries() []NodeRegistry {
	byNode := rt.LeadersByNode()
	out := make([]NodeRegistry, 0, len(rt.opts.Specs))
	for _, spec := range rt.opts.Specs {
		id := spec.ID
		reg := rt.nodeRegs[id]
		if reg == nil {
			continue
		}
		reg.Gauge("multiraft_leaders_held").Set(int64(len(byNode[id])))
		if d := rt.demuxes[id]; d != nil {
			st := d.Stats()
			var flushes int64
			for _, n := range st.CoalescedFlushes {
				flushes += n
			}
			reg.Gauge("multiraft_hb_coalesced_flushes").Set(flushes)
			reg.Gauge("multiraft_hb_coalesced_items").Set(st.CoalescedItems)
			reg.Gauge("multiraft_shard_unknown_drops").Set(st.UnknownShardDrops)
		}
		if g := rt.syncs[id]; g != nil {
			st := g.Stats()
			reg.Gauge("multiraft_fsync_requests").Set(st.Requests)
			reg.Gauge("multiraft_fsync_physical").Set(st.Syncs)
		}
		out = append(out, NodeRegistry{ID: id, Reg: reg})
	}
	return out
}

// StaleRejects returns how many routed writes were rejected for holding a
// stale table version and re-routed.
func (rt *Runtime) StaleRejects() int64 { return rt.staleRejects.Load() }

// FenceWaits returns how many routed write attempts backed off on a
// fenced range during a split.
func (rt *Runtime) FenceWaits() int64 { return rt.fenceWaits.Load() }

// Crash takes a node down across every shard it hosts — one process
// death kills all co-located rings.
func (rt *Runtime) Crash(id wire.NodeID) error {
	for s, c := range rt.shardList() {
		if err := c.Crash(id); err != nil {
			return fmt.Errorf("multiraft: crash %s on shard %d: %w", id, s, err)
		}
	}
	rt.mu.Lock()
	rt.down[id] = true
	rt.mu.Unlock()
	return nil
}

// Restart brings a crashed node back on every shard.
func (rt *Runtime) Restart(id wire.NodeID) error {
	for s, c := range rt.shardList() {
		if err := c.Restart(id); err != nil {
			return fmt.Errorf("multiraft: restart %s on shard %d: %w", id, s, err)
		}
	}
	rt.mu.Lock()
	delete(rt.down, id)
	rt.mu.Unlock()
	return nil
}

// UpNodes returns the nodes not currently crashed, in spec order.
func (rt *Runtime) UpNodes() []wire.NodeID {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []wire.NodeID
	for _, s := range rt.opts.Specs {
		if !rt.down[s.ID] {
			out = append(out, s.ID)
		}
	}
	return out
}

// RunRetention drives one snapshot/purge scheduler for the whole
// process: a single goroutine round-robining the purge protocol over
// every shard, instead of a timer per ring. Blocks until ctx is done.
func (rt *Runtime) RunRetention(ctx context.Context, opts cluster.RetentionOptions) {
	interval := opts.Interval
	if interval == 0 {
		interval = time.Second
	}
	tk := rt.clk.NewTicker(interval)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C():
			for _, c := range rt.shardList() {
				// Purge errors (no leader mid-failover) are transient;
				// the next round retries.
				_, _ = c.PurgeOnce(opts.RetentionEntries)
			}
		}
	}
}

// Close tears the whole process set down: every shard ring, then the
// shared demuxes, fsync groups and network.
func (rt *Runtime) Close() {
	for _, c := range rt.shardList() {
		c.Close()
	}
	for _, d := range rt.demuxes {
		d.Close()
	}
	for _, g := range rt.syncs {
		g.Close()
	}
	rt.net.Close()
}
