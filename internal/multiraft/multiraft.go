// Package multiraft hosts many raft rings (shards) in one process, the
// way the paper's fleet runs MyRaft: each MySQL shard is an independent
// replicaset, but a node carries dozens of them, so per-shard costs —
// heartbeat timers, fsync schedules, purge scans, transport endpoints —
// must be shared per node, not multiplied per ring.
//
// The runtime stacks four mechanisms on the single-ring cluster package:
//
//   - one transport endpoint per node, multiplexed across shards by a
//     transport.Demux speaking the wire.ShardEnvelope frame;
//   - heartbeat coalescing in that demux: one physical message per
//     (node, peer) pair per interval carries every co-located shard
//     leader's heartbeat, collapsing O(shards × peers) messages into
//     O(peers);
//   - a shared-resource layer per node: one SyncGroup funneling every
//     shard's log-writer fsync, and one retention scheduler driving every
//     shard's snapshot/purge cycle;
//   - a Router mapping keys to shards over reloadable hash-range tables,
//     and a leader balancer spreading shard leaders across up nodes.
package multiraft

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"myraft/internal/clock"
	"myraft/internal/cluster"
	"myraft/internal/discovery"
	"myraft/internal/metrics"
	"myraft/internal/raft"
	"myraft/internal/transport"
	"myraft/internal/wire"
)

// Options configures a multi-shard runtime.
type Options struct {
	// Shards is the number of raft rings hosted by the process set.
	Shards int
	// Specs is the per-shard member topology. Every shard gets the same
	// node set — the paper's deployment unit is a host carrying one
	// mysqld per shard — so node IDs here name processes, and each shard
	// ring stretches across all of them.
	Specs []cluster.MemberSpec
	// Name prefixes shard replicaset names in service discovery
	// (default "multiraft"; shard s registers as "<name>/shard-<s>").
	Name string
	// Dir is the root state directory (a subdirectory per shard). A temp
	// directory is created when empty.
	Dir string
	// Raft is the per-node config template, applied to every shard.
	Raft raft.Config
	// NetConfig configures the shared network.
	NetConfig transport.Config
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Seed seeds network jitter for reproducible runs.
	Seed int64
	// Table is the initial routing table (default UniformTable(Shards)).
	Table Table
	// TraceSampleEvery is each shard cluster's write-path trace sampling
	// rate (see cluster.Options.TraceSampleEvery). A many-shard process
	// usually wants n > 1: the per-txn cost is small but exists, and the
	// histograms converge quickly even at 1-in-16.
	TraceSampleEvery int
	// DisableCoalescing turns off heartbeat coalescing: every shard
	// heartbeat crosses in its own envelope (the per-shard fallback, and
	// the baseline for the coalescing experiments).
	DisableCoalescing bool
	// OnRoleChange, when set, observes every role transition on every
	// shard (the chaos harness checks election safety per shard with it).
	OnRoleChange func(shard wire.ShardID, rc raft.RoleChange)
	// WrapLogStore, when set, wraps each member's log store before the
	// shared per-node SyncGroup does (fault injection, modeled device
	// latency). The sync group always stays outermost so every shard's
	// fsyncs still funnel through one worker per node.
	WrapLogStore func(id wire.NodeID, store raft.LogStore) raft.LogStore
}

// Runtime is a running multi-shard process set.
type Runtime struct {
	opts     Options
	net      *transport.Network
	registry *discovery.Registry
	clk      clock.Clock
	demuxes  map[wire.NodeID]*transport.Demux
	syncs    map[wire.NodeID]*SyncGroup
	shards   []*cluster.Cluster
	router   *Router
	reg      *metrics.Registry

	mu   sync.Mutex
	down map[wire.NodeID]bool
}

// New builds and starts every shard ring. No leaders exist until
// Bootstrap (or election timeouts) elect them.
func New(opts Options) (*Runtime, error) {
	if opts.Shards <= 0 {
		return nil, fmt.Errorf("multiraft: Shards must be positive")
	}
	if len(opts.Specs) == 0 {
		return nil, fmt.Errorf("multiraft: no member specs")
	}
	if opts.Name == "" {
		opts.Name = "multiraft"
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "myraft-multiraft-")
		if err != nil {
			return nil, fmt.Errorf("multiraft: %w", err)
		}
		opts.Dir = dir
	}
	if len(opts.Table.Ranges) == 0 {
		opts.Table = UniformTable(opts.Shards)
	}
	router, err := NewRouter(opts.Table, opts.Shards)
	if err != nil {
		return nil, err
	}

	netCfg := opts.NetConfig
	if netCfg.Seed == 0 {
		netCfg.Seed = opts.Seed
	}
	rt := &Runtime{
		opts:     opts,
		net:      transport.New(netCfg, opts.Clock),
		registry: discovery.NewRegistry(),
		clk:      opts.Clock,
		demuxes:  make(map[wire.NodeID]*transport.Demux),
		syncs:    make(map[wire.NodeID]*SyncGroup),
		router:   router,
		reg:      metrics.NewRegistry(),
		down:     make(map[wire.NodeID]bool),
	}

	// One endpoint + demux + fsync group per node, shared by every shard.
	hb := opts.Raft.HeartbeatInterval
	if hb == 0 {
		hb = 500 * time.Millisecond
	}
	flush := hb
	if opts.DisableCoalescing {
		flush = 0
	}
	for _, spec := range opts.Specs {
		if _, ok := rt.demuxes[spec.ID]; ok {
			rt.Close()
			return nil, fmt.Errorf("multiraft: duplicate member %s", spec.ID)
		}
		ep := rt.net.Register(spec.ID, spec.Region)
		rt.demuxes[spec.ID] = transport.NewDemux(ep, opts.Clock, transport.DemuxConfig{FlushInterval: flush})
		rt.syncs[spec.ID] = NewSyncGroup()
	}

	for s := 0; s < opts.Shards; s++ {
		shard := wire.ShardID(s)
		rcfg := opts.Raft
		if opts.OnRoleChange != nil {
			hook := opts.OnRoleChange
			rcfg.OnRoleChange = func(rc raft.RoleChange) { hook(shard, rc) }
		}
		c, err := cluster.New(cluster.Options{
			Name:     rt.ShardName(shard),
			Dir:      filepath.Join(opts.Dir, fmt.Sprintf("shard-%d", s)),
			Raft:     rcfg,
			Net:      rt.net,
			Registry: rt.registry,
			Clock:    opts.Clock,
			Seed:     opts.Seed,

			TraceSampleEvery: opts.TraceSampleEvery,
			Transport: func(id wire.NodeID, _ wire.Region) transport.Transport {
				return rt.demuxes[id].Shard(shard)
			},
			WrapLogStore: func(id wire.NodeID, store raft.LogStore) raft.LogStore {
				if opts.WrapLogStore != nil {
					store = opts.WrapLogStore(id, store)
				}
				return rt.syncs[id].Wrap(store)
			},
		}, opts.Specs)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("multiraft: shard %d: %w", s, err)
		}
		rt.shards = append(rt.shards, c)
	}
	rt.reg.Gauge("shards_hosted").Set(int64(opts.Shards))
	return rt, nil
}

// Name returns the runtime's name prefix.
func (rt *Runtime) Name() string { return rt.opts.Name }

// ShardName returns the discovery name of one shard's replicaset.
func (rt *Runtime) ShardName(shard wire.ShardID) string {
	return fmt.Sprintf("%s/shard-%d", rt.opts.Name, shard)
}

// Shards returns the number of hosted shards.
func (rt *Runtime) Shards() int { return len(rt.shards) }

// Shard returns one shard's cluster (nil for unknown shards).
func (rt *Runtime) Shard(id wire.ShardID) *cluster.Cluster {
	if int(id) >= len(rt.shards) {
		return nil
	}
	return rt.shards[id]
}

// Router returns the key→shard router.
func (rt *Runtime) Router() *Router { return rt.router }

// Net returns the shared network (fault injection, stats).
func (rt *Runtime) Net() *transport.Network { return rt.net }

// Registry returns the shared discovery registry.
func (rt *Runtime) Registry() *discovery.Registry { return rt.registry }

// Demux returns one node's shard demultiplexer (nil for unknown nodes).
func (rt *Runtime) Demux(id wire.NodeID) *transport.Demux { return rt.demuxes[id] }

// SyncGroup returns one node's shared fsync group (nil for unknown
// nodes).
func (rt *Runtime) SyncGroup(id wire.NodeID) *SyncGroup { return rt.syncs[id] }

// Nodes returns the node IDs in spec order.
func (rt *Runtime) Nodes() []wire.NodeID {
	out := make([]wire.NodeID, 0, len(rt.opts.Specs))
	for _, s := range rt.opts.Specs {
		out = append(out, s.ID)
	}
	return out
}

// Bootstrap elects an initial leader for every shard, spreading them
// round-robin across the MySQL voter nodes, and waits until each shard
// has a published primary. Shards bootstrap concurrently — a 16-shard
// process must not pay 16 sequential election waits.
func (rt *Runtime) Bootstrap(ctx context.Context) error {
	var voters []wire.NodeID
	for _, s := range rt.opts.Specs {
		if s.Kind == cluster.KindMySQL && s.Voter {
			voters = append(voters, s.ID)
		}
	}
	if len(voters) == 0 {
		return fmt.Errorf("multiraft: no MySQL voters to bootstrap")
	}
	errs := make(chan error, len(rt.shards))
	for s, c := range rt.shards {
		go func(c *cluster.Cluster, at wire.NodeID) {
			errs <- c.Bootstrap(ctx, at)
		}(c, voters[s%len(voters)])
	}
	for range rt.shards {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// ShardStatus is one shard's row in the /shards rollup.
type ShardStatus struct {
	Shard        wire.ShardID `json:"shard"`
	Name         string       `json:"name"`
	Leader       wire.NodeID  `json:"leader,omitempty"`
	Term         uint64       `json:"term"`
	CommitIndex  uint64       `json:"commit_index"`
	DurableIndex uint64       `json:"durable_index"`
	PurgeFloor   uint64       `json:"purge_floor"`
}

// ShardStatuses surveys every shard: its leader (empty while none is
// claiming), term, commit/durable progress and purge floor.
func (rt *Runtime) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, 0, len(rt.shards))
	for s, c := range rt.shards {
		st := ShardStatus{
			Shard:      wire.ShardID(s),
			Name:       rt.ShardName(wire.ShardID(s)),
			PurgeFloor: c.PurgeFloor(),
		}
		if leader := c.Leader(); leader != nil && leader.Node() != nil {
			ns := leader.Node().Status()
			st.Leader = ns.ID
			st.Term = ns.Term
			st.CommitIndex = ns.CommitIndex
			st.DurableIndex = ns.DurableIndex
		}
		out = append(out, st)
	}
	return out
}

// LeadersByNode groups shard leadership by hosting node. Leaderless
// shards are absent.
func (rt *Runtime) LeadersByNode() map[wire.NodeID][]wire.ShardID {
	out := make(map[wire.NodeID][]wire.ShardID)
	for _, st := range rt.ShardStatuses() {
		if st.Leader != "" {
			out[st.Leader] = append(out[st.Leader], st.Shard)
		}
	}
	return out
}

// Metrics refreshes and returns the runtime's instrument registry:
// per-node leaders-held gauges, coalesced-heartbeat traffic, and fsync
// coalescing counters — one scrape covers the process.
func (rt *Runtime) Metrics() *metrics.Registry {
	byNode := rt.LeadersByNode()
	for _, spec := range rt.opts.Specs {
		id := spec.ID
		rt.reg.Gauge("leaders_held:" + string(id)).Set(int64(len(byNode[id])))
		if d := rt.demuxes[id]; d != nil {
			st := d.Stats()
			var flushes int64
			for _, n := range st.CoalescedFlushes {
				flushes += n
			}
			rt.reg.Gauge("hb_coalesced_flushes:" + string(id)).Set(flushes)
			rt.reg.Gauge("hb_coalesced_items:" + string(id)).Set(st.CoalescedItems)
			rt.reg.Gauge("shard_unknown_drops:" + string(id)).Set(st.UnknownShardDrops)
		}
		if g := rt.syncs[id]; g != nil {
			st := g.Stats()
			rt.reg.Gauge("fsync_requests:" + string(id)).Set(st.Requests)
			rt.reg.Gauge("fsync_physical:" + string(id)).Set(st.Syncs)
		}
	}
	return rt.reg
}

// Crash takes a node down across every shard it hosts — one process
// death kills all co-located rings.
func (rt *Runtime) Crash(id wire.NodeID) error {
	for s, c := range rt.shards {
		if err := c.Crash(id); err != nil {
			return fmt.Errorf("multiraft: crash %s on shard %d: %w", id, s, err)
		}
	}
	rt.mu.Lock()
	rt.down[id] = true
	rt.mu.Unlock()
	return nil
}

// Restart brings a crashed node back on every shard.
func (rt *Runtime) Restart(id wire.NodeID) error {
	for s, c := range rt.shards {
		if err := c.Restart(id); err != nil {
			return fmt.Errorf("multiraft: restart %s on shard %d: %w", id, s, err)
		}
	}
	rt.mu.Lock()
	delete(rt.down, id)
	rt.mu.Unlock()
	return nil
}

// UpNodes returns the nodes not currently crashed, in spec order.
func (rt *Runtime) UpNodes() []wire.NodeID {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []wire.NodeID
	for _, s := range rt.opts.Specs {
		if !rt.down[s.ID] {
			out = append(out, s.ID)
		}
	}
	return out
}

// RunRetention drives one snapshot/purge scheduler for the whole
// process: a single goroutine round-robining the purge protocol over
// every shard, instead of a timer per ring. Blocks until ctx is done.
func (rt *Runtime) RunRetention(ctx context.Context, opts cluster.RetentionOptions) {
	interval := opts.Interval
	if interval == 0 {
		interval = time.Second
	}
	tk := rt.clk.NewTicker(interval)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C():
			for _, c := range rt.shards {
				// Purge errors (no leader mid-failover) are transient;
				// the next round retries.
				_, _ = c.PurgeOnce(opts.RetentionEntries)
			}
		}
	}
}

// Close tears the whole process set down: every shard ring, then the
// shared demuxes, fsync groups and network.
func (rt *Runtime) Close() {
	for _, c := range rt.shards {
		c.Close()
	}
	for _, d := range rt.demuxes {
		d.Close()
	}
	for _, g := range rt.syncs {
		g.Close()
	}
	rt.net.Close()
}
