package multiraft

// split.go is the online shard split: carve one shard's widest hash
// range in two, bootstrap a brand-new ring for the upper subrange over
// the shared per-node transports, and cut routed clients over through
// two table versions — a fence generation and a final generation — so
// that no acked write is ever lost.
//
// Protocol (DESIGN.md §11):
//
//  1. AddShard: build ring N over the existing demux/fsync groups and
//     bootstrap a leader on the least-loaded voter. The new ring owns no
//     keys yet, so it serves no traffic.
//  2. Fence (version V+1): the moved subrange keeps Shard: source so
//     reads stay served, but Fenced: true rejects routed writes. Writers
//     register in-flight under the table version they validated against
//     BEFORE revalidating their route (writeGate), so after this reload
//     every pre-fence write is either counted or already rejected.
//  3. Drain: wait until no write admitted under a version < V+1 remains
//     in flight. From here no write can land in the moved subrange.
//  4. Copy: wait for the source primary to apply everything it has
//     committed, then snapshot its engine rows (storage's
//     ordering-consistent CheckpointRows) and replay the rows hashing
//     into the moved subrange onto the new ring in chunked multi-row
//     transactions. New-ring followers replicate them through raft; a
//     laggard joining later catches up via the chunked snapshot path.
//  5. Cutover (version V+2): the moved subrange now routes to the new
//     shard, unfenced. Routed writers holding V or V+1 fail their
//     revalidation, count a stale rejection, and retry under V+2.
//  6. Cleanup: delete the moved rows from the source ring in chunked
//     transactions. Reads never saw a gap: until V+2 published, the
//     source still served them.
//
// Safety argument for "no acked write lost": a write is acked only after
// consensus commit on its ring. Acked writes to the moved subrange are
// all admitted under tables < V+1 (later tables fence the subrange), so
// the drain in step 3 waits for them; step 4's WaitForApplied then
// guarantees the copy snapshot contains every one of them, and step 5
// routes all later writes to the ring that holds the copy.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/mysql"
	"myraft/internal/storage"
	"myraft/internal/wire"
)

// splitCopyChunk bounds how many rows one copy/cleanup transaction
// carries; chunking keeps individual raft entries small and resumable.
const splitCopyChunk = 64

// SplitReport describes one completed online shard split.
type SplitReport struct {
	Source   wire.ShardID `json:"source"`
	NewShard wire.ShardID `json:"new_shard"`
	// Start/End is the hash subrange moved to the new shard.
	Start uint32 `json:"start"`
	End   uint32 `json:"end"`
	// RowsMoved counts rows copied to the new ring (and deleted from the
	// source after cutover).
	RowsMoved int `json:"rows_moved"`
	// TableVersion is the routing-table generation serving after cutover.
	TableVersion uint64        `json:"table_version"`
	Elapsed      time.Duration `json:"-"`
}

// AddShard builds and bootstraps one more ring over the shared per-node
// transports and fsync groups, returning its shard ID. The new shard
// serves no keys until a table reload routes a range to it.
func (rt *Runtime) AddShard(ctx context.Context) (wire.ShardID, error) {
	rt.splitMu.Lock()
	defer rt.splitMu.Unlock()
	return rt.addShard(ctx)
}

// addShard is AddShard under an already-held splitMu (topology changes
// are serialized).
func (rt *Runtime) addShard(ctx context.Context) (wire.ShardID, error) {
	rt.mu.RLock()
	shard := wire.ShardID(len(rt.shards))
	rt.mu.RUnlock()

	c, err := rt.newShardCluster(shard)
	if err != nil {
		return 0, fmt.Errorf("multiraft: add shard %d: %w", shard, err)
	}

	// Bootstrap on the least-loaded up voter so the split does not pile
	// another leader onto the busiest node.
	var voters []wire.NodeID
	upSet := make(map[wire.NodeID]bool)
	for _, id := range rt.UpNodes() {
		upSet[id] = true
	}
	for _, s := range rt.opts.Specs {
		if s.Kind == cluster.KindMySQL && s.Voter && upSet[s.ID] {
			voters = append(voters, s.ID)
		}
	}
	if len(voters) == 0 {
		c.Close()
		return 0, fmt.Errorf("multiraft: add shard %d: no up MySQL voters", shard)
	}
	load := make(map[wire.NodeID]int)
	for id, shards := range rt.LeadersByNode() {
		load[id] = len(shards)
	}
	at := leastLoaded(voters, load, "")
	if err := c.Bootstrap(ctx, at); err != nil {
		c.Close()
		return 0, fmt.Errorf("multiraft: add shard %d: bootstrap: %w", shard, err)
	}

	rt.mu.Lock()
	rt.shards = append(rt.shards, c)
	bound := len(rt.shards)
	rt.mu.Unlock()
	rt.router.SetShardBound(bound)
	return shard, nil
}

// Split carves the source shard's widest owned hash range in two and
// moves the upper half onto a freshly bootstrapped ring, online, with
// zero acked-write loss (see the protocol at the top of this file).
// Routed clients cut over via stale-version rejection; unrouted traffic
// to other shards is never blocked.
func (rt *Runtime) Split(ctx context.Context, source wire.ShardID) (*SplitReport, error) {
	rt.splitMu.Lock()
	defer rt.splitMu.Unlock()
	start := time.Now()

	if rt.Shard(source) == nil {
		return nil, fmt.Errorf("multiraft: split: unknown shard %d", source)
	}
	tab := rt.router.Table()
	moved, ok := widestRange(tab, source)
	if !ok {
		return nil, fmt.Errorf("multiraft: split: shard %d owns no splittable range", source)
	}
	mid := moved.Start + (moved.End-moved.Start)/2
	upper := Range{Start: mid + 1, End: moved.End}

	// 1. New ring, leader elected, owning nothing yet.
	newShard, err := rt.addShard(ctx)
	if err != nil {
		return nil, err
	}

	// 2. Fence generation V+1: upper subrange still reads from source,
	// rejects routed writes.
	fenced := retarget(tab, moved, []Range{
		{Start: moved.Start, End: mid, Shard: source},
		{Start: upper.Start, End: upper.End, Shard: source, Fenced: true},
	})
	fenced.Version = tab.Version + 1
	if err := rt.router.Reload(fenced); err != nil {
		return nil, fmt.Errorf("multiraft: split: fence reload: %w", err)
	}
	// On any later failure, roll the fence forward to an unfenced table
	// that still routes everything to the source — the split aborts with
	// no ownership change and writers unblock.
	committed := false
	defer func() {
		if committed {
			return
		}
		rollback := retarget(tab, moved, []Range{moved})
		rollback.Version = rt.router.Version() + 1
		_ = rt.router.Reload(rollback)
	}()

	// 3. Drain every write admitted under a pre-fence table.
	if err := rt.gate.drainBelow(ctx, fenced.Version); err != nil {
		return nil, fmt.Errorf("multiraft: split: drain: %w", err)
	}

	// 4. Copy the moved rows from a fully applied source primary.
	srcRows, err := rt.fencedRows(ctx, source, upper)
	if err != nil {
		return nil, fmt.Errorf("multiraft: split: %w", err)
	}
	if err := rt.copyRows(ctx, newShard, srcRows); err != nil {
		return nil, fmt.Errorf("multiraft: split: copy: %w", err)
	}

	// 5. Cutover generation V+2: the upper subrange routes to the new
	// shard. Every routed writer still holding an older version takes a
	// stale rejection and retries against the new owner.
	final := retarget(tab, moved, []Range{
		{Start: moved.Start, End: mid, Shard: source},
		{Start: upper.Start, End: upper.End, Shard: newShard},
	})
	final.Version = fenced.Version + 1
	if err := rt.router.Reload(final); err != nil {
		return nil, fmt.Errorf("multiraft: split: cutover reload: %w", err)
	}
	committed = true
	rt.splits.Add(1)

	// 6. Best-effort cleanup: the moved rows are dead weight on the
	// source now that nothing routes to them there.
	if err := rt.deleteRows(ctx, source, srcRows); err != nil {
		return nil, fmt.Errorf("multiraft: split: cleanup: %w", err)
	}

	return &SplitReport{
		Source:       source,
		NewShard:     newShard,
		Start:        upper.Start,
		End:          upper.End,
		RowsMoved:    len(srcRows),
		TableVersion: final.Version,
		Elapsed:      time.Since(start),
	}, nil
}

// widestRange picks the source shard's widest owned range — the one
// whose halving moves the most key space.
func widestRange(t Table, shard wire.ShardID) (Range, bool) {
	var best Range
	found := false
	for _, r := range t.Ranges {
		if r.Shard != shard || r.Fenced {
			continue
		}
		if !found || r.End-r.Start > best.End-best.Start {
			best, found = r, true
		}
	}
	if !found || best.End == best.Start {
		return Range{}, false
	}
	return best, true
}

// retarget returns a copy of the table with one range replaced by the
// given subranges (which must cover exactly the replaced span).
func retarget(t Table, old Range, with []Range) Table {
	out := Table{Version: t.Version}
	for _, r := range t.Ranges {
		if r.Start == old.Start && r.End == old.End && r.Shard == old.Shard {
			out.Ranges = append(out.Ranges, with...)
			continue
		}
		out.Ranges = append(out.Ranges, r)
	}
	sort.Slice(out.Ranges, func(i, j int) bool { return out.Ranges[i].Start < out.Ranges[j].Start })
	return out
}

// splitRow is one row captured for the move, in deterministic key order.
type splitRow struct {
	key   string
	value []byte
}

// fencedRows waits for the source primary to apply everything committed,
// then snapshots the rows hashing into the fenced subrange. Called only
// after the drain: no write to the subrange can commit anymore, so the
// snapshot is complete.
func (rt *Runtime) fencedRows(ctx context.Context, source wire.ShardID, r Range) ([]splitRow, error) {
	c := rt.Shard(source)
	primary, srv, err := shardPrimary(ctx, c)
	if err != nil {
		return nil, err
	}
	commit := primary.Node().Status().CommitIndex
	if err := srv.WaitForApplied(ctx, commit); err != nil {
		return nil, fmt.Errorf("wait applied: %w", err)
	}
	rows, _ := srv.Engine().CheckpointRows()
	var out []splitRow
	for k, v := range rows {
		if h := hashKey(k); h >= r.Start && h <= r.End {
			out = append(out, splitRow{key: k, value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out, nil
}

// copyRows replays the moved rows onto the new ring in chunked
// transactions through its consensus commit path.
func (rt *Runtime) copyRows(ctx context.Context, shard wire.ShardID, rows []splitRow) error {
	return rt.chunkedWrite(ctx, shard, rows, func(t *storage.Txn, r splitRow) error {
		return t.Set(r.key, r.value)
	})
}

// deleteRows removes the moved rows from the source ring after cutover.
func (rt *Runtime) deleteRows(ctx context.Context, shard wire.ShardID, rows []splitRow) error {
	return rt.chunkedWrite(ctx, shard, rows, func(t *storage.Txn, r splitRow) error {
		return t.Delete(r.key)
	})
}

func (rt *Runtime) chunkedWrite(ctx context.Context, shard wire.ShardID, rows []splitRow, apply func(*storage.Txn, splitRow) error) error {
	c := rt.Shard(shard)
	for start := 0; start < len(rows); start += splitCopyChunk {
		chunk := rows[start:min(start+splitCopyChunk, len(rows))]
		// Re-resolve the primary per chunk so a mid-copy failover only
		// costs a retry of one chunk, not the whole move.
		for {
			_, srv, err := shardPrimary(ctx, c)
			if err != nil {
				return err
			}
			_, err = srv.ExecuteWrite(ctx, func(t *storage.Txn) error {
				for _, r := range chunk {
					if err := apply(t, r); err != nil {
						return err
					}
				}
				return nil
			})
			if err == nil {
				break
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return nil
}

// shardPrimary resolves one shard's current primary member and server.
func shardPrimary(ctx context.Context, c *cluster.Cluster) (*cluster.Member, *mysql.Server, error) {
	m, err := c.AnyPrimary(ctx)
	if err != nil {
		return nil, nil, err
	}
	if m.Server() == nil || m.Node() == nil {
		return nil, nil, fmt.Errorf("primary %s has no mysql stack", m.Spec.ID)
	}
	return m, m.Server(), nil
}
