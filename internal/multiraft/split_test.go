package multiraft

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"myraft/internal/wire"
)

// TestShardSplit is the online-split acceptance scenario: a 1-shard
// runtime splits into 2 under a concurrent routed write workload. After
// cutover: zero acked-write loss (every acked key reads back with its
// last acked value through the router), both rings hold internally
// consistent engine/GTID state, the router version bumped twice (fence +
// cutover), and every stale-version rejection was retried to success.
func TestShardSplit(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rt, err := New(testOptions(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}

	// Concurrent routed writers: each loops over its own key space,
	// recording the last acked value per key. Writes keep flowing
	// through the fence, drain, copy, and cutover.
	const writers = 4
	var (
		ackedMu sync.Mutex
		acked   = make(map[string]string)
		stop    atomic.Bool
		failed  atomic.Int64
		wrote   atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := rt.NewClient(0)
			for i := 0; !stop.Load(); i++ {
				key := fmt.Sprintf("w%d-key-%d", w, i%64)
				val := fmt.Sprintf("w%d-val-%d", w, i)
				wctx, wcancel := context.WithTimeout(ctx, 20*time.Second)
				_, err := cl.Write(wctx, key, []byte(val))
				wcancel()
				if err != nil {
					// Write retries internally through fences and
					// reloads; an error here means a write was NOT acked
					// (fine for the loss check) but if the parent ctx is
					// alive it signals retries did not converge.
					if ctx.Err() == nil {
						failed.Add(1)
					}
					continue
				}
				wrote.Add(1)
				ackedMu.Lock()
				acked[key] = val
				ackedMu.Unlock()
			}
		}(w)
	}

	// Let the workload establish, then split shard 0 online.
	waitForCount(t, &wrote, 50, 30*time.Second)
	report, err := rt.Split(ctx, 0)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	// A moment of post-cutover traffic so stale-version retries exercise
	// the new table, then stop the writers.
	waitForCount(t, &wrote, wrote.Load()+50, 30*time.Second)
	stop.Store(true)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d routed writes failed to retry to success", failed.Load())
	}
	if rt.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", rt.Shards())
	}
	if report.NewShard != 1 || report.Source != 0 {
		t.Fatalf("unexpected report %+v", report)
	}
	// Fence + cutover = two version bumps over the initial table.
	if got := rt.Router().Version(); got != 3 || report.TableVersion != 3 {
		t.Fatalf("router version = %d (report %d), want 3", got, report.TableVersion)
	}
	if rt.StaleRejects() == 0 && rt.FenceWaits() == 0 {
		t.Logf("note: split completed without observing a fence wait or stale reject")
	}

	// Zero acked-write loss: every acked key reads back its last acked
	// value through the router, linearizably, from whichever ring owns it
	// now. Keys must also live on the ring the table says owns them.
	cl := rt.NewClient(0)
	moved := 0
	for key, want := range acked {
		res, err := cl.ReadLinearizable(ctx, key)
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		if !res.Found || string(res.Value) != want {
			t.Fatalf("acked write lost: key %s = %q, want %q (found=%v)", key, res.Value, want, res.Found)
		}
		if rt.Router().ShardFor(key) == report.NewShard {
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("no acked keys routed to the new shard; split moved nothing observable")
	}
	t.Logf("split moved %d rows (%d/%d acked keys now on shard %d), stale rejects=%d fence waits=%d",
		report.RowsMoved, moved, len(acked), report.NewShard, rt.StaleRejects(), rt.FenceWaits())

	// Both rings are internally consistent: engine checksums converge
	// across members and the GTID sets match per ring (appliers are
	// given time to drain).
	for s := 0; s < rt.Shards(); s++ {
		waitShardConverged(t, rt, wire.ShardID(s), 30*time.Second)
	}

	// The split cleaned the moved rows off the source: no key routed to
	// the new shard may still exist on the source ring's engines.
	srcPrimary, err := rt.Shard(0).AnyPrimary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for key := range acked {
		if rt.Router().ShardFor(key) != report.NewShard {
			continue
		}
		if _, found := srcPrimary.Server().Read(key); found {
			t.Fatalf("moved key %s still present on source shard", key)
		}
	}
}

// TestSplitDrainDoesNotBlockRetainedRange: writes to the subrange the
// source KEEPS must keep committing while the moved subrange is fenced —
// the drain waits only for pre-fence admissions, not for ongoing traffic.
func TestSplitRetainedRangeKeepsWriting(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rt, err := New(testOptions(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wrote atomic.Int64
	var failed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := rt.NewClient(0)
		for i := 0; !stop.Load(); i++ {
			wctx, wcancel := context.WithTimeout(ctx, 20*time.Second)
			_, err := cl.Write(wctx, fmt.Sprintf("retain-%d", i), []byte("v"))
			wcancel()
			if err != nil && ctx.Err() == nil {
				failed.Add(1)
			} else if err == nil {
				wrote.Add(1)
			}
		}
	}()
	waitForCount(t, &wrote, 20, 30*time.Second)
	if _, err := rt.Split(ctx, 0); err != nil {
		t.Fatalf("split: %v", err)
	}
	after := wrote.Load()
	waitForCount(t, &wrote, after+20, 30*time.Second)
	stop.Store(true)
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d writes failed during split", failed.Load())
	}
}

// TestSplitUnknownShard: splitting a shard that does not exist fails
// cleanly without touching the table.
func TestSplitUnknownShard(t *testing.T) {
	rt, err := New(testOptions(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	before := rt.Router().Version()
	if _, err := rt.Split(context.Background(), 7); err == nil {
		t.Fatal("split of unknown shard succeeded")
	}
	if got := rt.Router().Version(); got != before {
		t.Fatalf("failed split moved the table: %d -> %d", before, got)
	}
}

// waitShardConverged waits until every up member of a shard reports the
// same engine checksum and GTID set, failing on divergence at the
// deadline.
func waitShardConverged(t *testing.T, rt *Runtime, shard wire.ShardID, timeout time.Duration) {
	t.Helper()
	c := rt.Shard(shard)
	deadline := time.Now().Add(timeout)
	for {
		converged := true
		sums := c.EngineChecksums()
		var firstSum uint32
		first := true
		for _, sum := range sums {
			if first {
				firstSum, first = sum, false
				continue
			}
			if sum != firstSum {
				converged = false
			}
		}
		gtids := ""
		for _, m := range c.Members() {
			if m.Server() == nil || m.IsDown() {
				continue
			}
			g := m.Server().GTIDExecuted().String()
			if gtids == "" {
				gtids = g
			} else if g != gtids {
				converged = false
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d did not converge: checksums=%v", shard, sums)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitForCount(t *testing.T, c *atomic.Int64, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for count %d (have %d)", want, c.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
