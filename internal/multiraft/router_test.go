package multiraft

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"myraft/internal/wire"
)

func TestUniformTableValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 100} {
		tab := UniformTable(n)
		if err := tab.Validate(n); err != nil {
			t.Fatalf("UniformTable(%d) invalid: %v", n, err)
		}
		if len(tab.Ranges) != n {
			t.Fatalf("UniformTable(%d) has %d ranges", n, len(tab.Ranges))
		}
	}
}

func TestTableValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		tab  Table
	}{
		{"empty", Table{}},
		{"gap at start", Table{Ranges: []Range{{Start: 1, End: math.MaxUint32}}}},
		{"gap in middle", Table{Ranges: []Range{
			{Start: 0, End: 99}, {Start: 200, End: math.MaxUint32, Shard: 1}}}},
		{"overlap", Table{Ranges: []Range{
			{Start: 0, End: 100}, {Start: 100, End: math.MaxUint32, Shard: 1}}}},
		{"gap at end", Table{Ranges: []Range{{Start: 0, End: math.MaxUint32 - 1}}}},
		{"inverted", Table{Ranges: []Range{
			{Start: 0, End: math.MaxUint32}, {Start: 500, End: 400, Shard: 1}}}},
		{"unknown shard", Table{Ranges: []Range{{Start: 0, End: math.MaxUint32, Shard: 9}}}},
	}
	for _, tc := range cases {
		if err := tc.tab.Validate(2); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.tab)
		}
	}
}

// Property: every key maps to exactly one shard — the routed shard's
// range contains the key's hash point, and no other range does.
func TestRouterEveryKeyExactlyOneShard(t *testing.T) {
	const shards = 16
	r, err := NewRouter(UniformTable(shards), shards)
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Table()
	f := func(key string) bool {
		point := hashKey(key)
		owners := 0
		var owner wire.ShardID
		for _, rg := range tab.Ranges {
			if rg.Start <= point && point <= rg.End {
				owners++
				owner = rg.Shard
			}
		}
		return owners == 1 && r.ShardFor(key) == owner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a reload that bumps the version but keeps the mapping routes
// every key identically — table reloads must not silently remap keys.
func TestRouterReloadAgreement(t *testing.T) {
	const shards = 8
	r, err := NewRouter(UniformTable(shards), shards)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[string]wire.ShardID)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.ShardFor(k)
	}
	next := UniformTable(shards)
	next.Version = 2
	if err := r.Reload(next); err != nil {
		t.Fatal(err)
	}
	for k, want := range before {
		if got := r.ShardFor(k); got != want {
			t.Fatalf("key %q remapped %d → %d across an equivalent reload", k, want, got)
		}
	}
}

// Sequential key patterns — the common real workload — must spread
// across shards, not clump: range partitioning reads the hash's high
// bits, which the finalizer must avalanche.
func TestRouterSequentialKeysSpread(t *testing.T) {
	const shards = 8
	r, err := NewRouter(UniformTable(shards), shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{"user:%d", "order-%d", "k%d"} {
		counts := make(map[wire.ShardID]int)
		const n = 1000
		for i := 0; i < n; i++ {
			counts[r.ShardFor(fmt.Sprintf(pattern, i))]++
		}
		if len(counts) != shards {
			t.Fatalf("pattern %q: only %d/%d shards hit: %v", pattern, len(counts), shards, counts)
		}
		for s, c := range counts {
			// Uniform expectation is n/shards = 125; allow a wide band.
			if c < n/shards/3 || c > n/shards*3 {
				t.Fatalf("pattern %q: shard %d got %d of %d keys: %v", pattern, s, c, n, counts)
			}
		}
	}
}

func TestRouterReloadStaleRejected(t *testing.T) {
	r, err := NewRouter(UniformTable(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	stale := UniformTable(4) // version 1 again
	if err := r.Reload(stale); err == nil {
		t.Fatal("stale reload accepted")
	}
	if r.Table().Version != 1 {
		t.Fatalf("version moved: %d", r.Table().Version)
	}
}

// A split-ready reload: shard 0's range handed partly to a new shard.
// Keys hashing into the moved range follow it; all others stay put.
func TestRouterSplitReload(t *testing.T) {
	base := Table{Version: 1, Ranges: []Range{
		{Start: 0, End: math.MaxUint32 / 2, Shard: 0},
		{Start: math.MaxUint32/2 + 1, End: math.MaxUint32, Shard: 1},
	}}
	r, err := NewRouter(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	split := Table{Version: 2, Ranges: []Range{
		{Start: 0, End: math.MaxUint32 / 4, Shard: 0},
		{Start: math.MaxUint32/4 + 1, End: math.MaxUint32 / 2, Shard: 2},
		{Start: math.MaxUint32/2 + 1, End: math.MaxUint32, Shard: 1},
	}}
	if err := r.Reload(split); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("split-key-%d", i)
		point := hashKey(k)
		got := r.ShardFor(k)
		switch {
		case point <= math.MaxUint32/4:
			if got != 0 {
				t.Fatalf("key %q (low range) on shard %d", k, got)
			}
		case point <= math.MaxUint32/2:
			if got != 2 {
				t.Fatalf("key %q (split range) on shard %d", k, got)
			}
		default:
			if got != 1 {
				t.Fatalf("key %q (high range) on shard %d", k, got)
			}
		}
	}
}
