package multiraft

import (
	"myraft/internal/cluster"
	"myraft/internal/wire"
)

// ShardMemberRegistry is one (shard, member) pair in the process-wide
// scrape: the member's refreshed registry plus the shard it belongs to,
// so a Prometheus render can label series with both dimensions.
type ShardMemberRegistry struct {
	Shard wire.ShardID
	cluster.MemberRegistry
}

// MemberRegistries refreshes and returns every up member's registry
// across every hosted shard, in (shard, spec) order. One scrape walks
// the whole process: N shards × M members groups, each carrying its own
// write-path stage histograms and raft/binlog/applier gauges.
func (rt *Runtime) MemberRegistries() []ShardMemberRegistry {
	shards := rt.shardList()
	out := make([]ShardMemberRegistry, 0, len(shards)*len(rt.opts.Specs))
	for s, c := range shards {
		for _, mr := range c.MemberRegistries() {
			out = append(out, ShardMemberRegistry{Shard: wire.ShardID(s), MemberRegistry: mr})
		}
	}
	return out
}
