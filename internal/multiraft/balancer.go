package multiraft

// balancer.go spreads shard leadership across up nodes. The paper's
// automation places primaries deliberately (maintenance drains, load
// spreading); here the policy is the simplest useful one — equalize the
// per-node leader count — built on the graceful TransferLeadership path
// (mock election pre-check, catch-up, real transfer), so a balancing move
// can never elect a lagging leader.

import (
	"context"
	"sort"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/wire"
)

// BalanceOnce runs one balancing pass: survey per-shard leadership,
// compute the even-spread target ⌈shards/up-voters⌉, and transfer shards
// off overloaded nodes onto the least-loaded up voters. It returns how
// many transfers succeeded. Individual transfer failures (a target
// mid-catch-up rejecting its mock election) are skipped, not fatal — the
// next pass retries.
func (rt *Runtime) BalanceOnce(ctx context.Context) int {
	up := make(map[wire.NodeID]bool)
	var voters []wire.NodeID
	rt.mu.Lock()
	for _, s := range rt.opts.Specs {
		if s.Kind == cluster.KindMySQL && s.Voter && !rt.down[s.ID] {
			up[s.ID] = true
			voters = append(voters, s.ID)
		}
	}
	rt.mu.Unlock()
	if len(voters) == 0 {
		return 0
	}
	shards := rt.shardList()
	target := (len(shards) + len(voters) - 1) / len(voters)

	load := make(map[wire.NodeID]int, len(voters))
	for _, id := range voters {
		load[id] = 0
	}
	byNode := rt.LeadersByNode()
	for id, shards := range byNode {
		if up[id] {
			load[id] = len(shards)
		}
	}

	// Heaviest donors first; within a donor, move its highest shards.
	donors := make([]wire.NodeID, 0, len(byNode))
	for id := range byNode {
		if up[id] && load[id] > target {
			donors = append(donors, id)
		}
	}
	sort.Slice(donors, func(i, j int) bool {
		if load[donors[i]] != load[donors[j]] {
			return load[donors[i]] > load[donors[j]]
		}
		return donors[i] < donors[j]
	})

	moves := 0
	for _, donor := range donors {
		held := append([]wire.ShardID(nil), byNode[donor]...)
		sort.Slice(held, func(i, j int) bool { return held[i] > held[j] })
		for _, shard := range held {
			if load[donor] <= target {
				break
			}
			dest := leastLoaded(voters, load, donor)
			if dest == "" || load[dest] >= target {
				break // nowhere lighter to move to
			}
			select {
			case <-ctx.Done():
				return moves
			default:
			}
			if int(shard) >= len(shards) {
				continue
			}
			if err := shards[shard].TransferLeadership(dest); err != nil {
				continue
			}
			load[donor]--
			load[dest]++
			moves++
		}
	}
	return moves
}

// leastLoaded picks the lightest up voter other than exclude (ties break
// by ID for determinism).
func leastLoaded(voters []wire.NodeID, load map[wire.NodeID]int, exclude wire.NodeID) wire.NodeID {
	var best wire.NodeID
	bestLoad := -1
	for _, id := range voters {
		if id == exclude {
			continue
		}
		if bestLoad < 0 || load[id] < bestLoad || (load[id] == bestLoad && id < best) {
			best = id
			bestLoad = load[id]
		}
	}
	return best
}

// RunBalancer runs balancing passes at the given interval until ctx is
// done — the runtime's standing leader-placement loop.
func (rt *Runtime) RunBalancer(ctx context.Context, interval time.Duration) {
	tk := rt.clk.NewTicker(interval)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C():
			rt.BalanceOnce(ctx)
		}
	}
}
