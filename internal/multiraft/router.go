package multiraft

// router.go maps client keys to shards. The paper's fleet shards MySQL by
// key range with automation moving ranges between replicasets; here the
// routing table is a versioned list of hash ranges over a 32-bit ring —
// static hash partitioning to start, but the table format already allows
// several ranges per shard, so a future shard split is a table reload
// (one range handed to a new shard), not a format change.

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"myraft/internal/wire"
)

// Range assigns the keys hashing into [Start, End] (inclusive) to Shard.
// A Fenced range still names the shard serving reads, but rejects routed
// writes: the shard split publishes a fenced table for the moving
// subrange while it drains in-flight writes and copies rows, so no write
// can land on the source after the copy snapshot is taken.
type Range struct {
	Start  uint32
	End    uint32
	Shard  wire.ShardID
	Fenced bool
}

// Table is one immutable routing-table version: an exhaustive,
// non-overlapping partition of the 32-bit hash ring. Higher versions
// replace lower ones on Reload.
type Table struct {
	Version uint64
	Ranges  []Range
}

// UniformTable builds version-1 static hash partitioning: n contiguous
// equal ranges, one per shard.
func UniformTable(n int) Table {
	if n <= 0 {
		return Table{}
	}
	width := uint64(math.MaxUint32)/uint64(n) + 1
	t := Table{Version: 1}
	for i := 0; i < n; i++ {
		start := uint64(i) * width
		end := start + width - 1
		if i == n-1 || end > math.MaxUint32 {
			end = math.MaxUint32
		}
		t.Ranges = append(t.Ranges, Range{Start: uint32(start), End: uint32(end), Shard: wire.ShardID(i)})
	}
	return t
}

// Validate checks that the table partitions the full hash ring: complete
// coverage, no overlap, no inverted ranges. When shards > 0 every range
// must also target a shard below that bound. Several ranges may target
// the same shard (split-ready).
func (t Table) Validate(shards int) error {
	if len(t.Ranges) == 0 {
		return fmt.Errorf("multiraft: empty routing table")
	}
	rs := append([]Range(nil), t.Ranges...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	if rs[0].Start != 0 {
		return fmt.Errorf("multiraft: routing table starts at %d, not 0", rs[0].Start)
	}
	for i, r := range rs {
		if r.End < r.Start {
			return fmt.Errorf("multiraft: inverted range [%d, %d]", r.Start, r.End)
		}
		if shards > 0 && int(r.Shard) >= shards {
			return fmt.Errorf("multiraft: range [%d, %d] targets unknown shard %d", r.Start, r.End, r.Shard)
		}
		if i == 0 {
			continue
		}
		prev := rs[i-1]
		if r.Start <= prev.End {
			return fmt.Errorf("multiraft: ranges [%d, %d] and [%d, %d] overlap", prev.Start, prev.End, r.Start, r.End)
		}
		if r.Start != prev.End+1 {
			return fmt.Errorf("multiraft: gap between %d and %d", prev.End, r.Start)
		}
	}
	if rs[len(rs)-1].End != math.MaxUint32 {
		return fmt.Errorf("multiraft: routing table ends at %d, leaving a gap", rs[len(rs)-1].End)
	}
	return nil
}

// hashKey positions a key on the ring: FNV-1a (the repo's standard
// non-cryptographic hash) followed by an avalanche finalizer. Range
// partitioning splits the space by the hash's HIGH bits, and raw FNV-1a
// barely moves them between near-identical keys ("user:0".."user:4"
// would all land on one shard); the fmix32-style finalizer spreads every
// input bit across the word.
func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	x := h.Sum32()
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// lookup returns the range owning the hash point. The table is assumed
// validated (exhaustive), so a miss cannot happen; the zero range is
// returned defensively.
func (t Table) lookup(point uint32) Range {
	i := sort.Search(len(t.Ranges), func(i int) bool { return t.Ranges[i].End >= point })
	if i < len(t.Ranges) && t.Ranges[i].Start <= point {
		return t.Ranges[i]
	}
	return Range{}
}

// ShardFor returns the shard owning the key under this table.
func (t Table) ShardFor(key string) wire.ShardID { return t.lookup(hashKey(key)).Shard }

// Router is the concurrent-safe holder of the current routing table.
// Reload swaps in a newer version atomically; in-flight lookups see
// either the old or the new table, never a mix.
type Router struct {
	shards int
	mu     sync.RWMutex
	table  Table
}

// NewRouter validates and installs the initial table. shards bounds the
// shard IDs a table may target (0 disables the bound).
func NewRouter(t Table, shards int) (*Router, error) {
	if err := t.Validate(shards); err != nil {
		return nil, err
	}
	sort.Slice(t.Ranges, func(i, j int) bool { return t.Ranges[i].Start < t.Ranges[j].Start })
	return &Router{shards: shards, table: t}, nil
}

// Table returns the current table.
func (r *Router) Table() Table {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Table{Version: r.table.Version, Ranges: append([]Range(nil), r.table.Ranges...)}
}

// ShardFor routes one key under the current table.
func (r *Router) ShardFor(key string) wire.ShardID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table.lookup(hashKey(key)).Shard
}

// RouteInfo is one atomic routing decision: the table version it was made
// under, the owning shard, and whether writes to the key are fenced.
type RouteInfo struct {
	Version uint64
	Shard   wire.ShardID
	Fenced  bool
}

// Route resolves one key under the current table, returning the decision
// together with the table version — version and lookup are read under one
// lock, so a concurrent Reload can never produce a (version, shard) pair
// that no single table ever contained. Routed writers revalidate this
// pair after registering in-flight; a mismatch is a stale-version
// rejection and the write re-routes.
func (r *Router) Route(key string) RouteInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rg := r.table.lookup(hashKey(key))
	return RouteInfo{Version: r.table.Version, Shard: rg.Shard, Fenced: rg.Fenced}
}

// Version returns the current table version.
func (r *Router) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table.Version
}

// SetShardBound raises the highest shard ID (exclusive) a reloaded table
// may target. The runtime calls this after a new shard ring is up, before
// publishing the table that routes keys to it.
func (r *Router) SetShardBound(shards int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shards > r.shards {
		r.shards = shards
	}
}

// Reload swaps in a strictly newer table version. Stale reloads (same or
// older version) are rejected, so concurrent reloaders converge on the
// newest table no matter the arrival order.
func (r *Router) Reload(t Table) error {
	sort.Slice(t.Ranges, func(i, j int) bool { return t.Ranges[i].Start < t.Ranges[j].Start })
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := t.Validate(r.shards); err != nil {
		return err
	}
	if t.Version <= r.table.Version {
		return fmt.Errorf("multiraft: stale table version %d (have %d)", t.Version, r.table.Version)
	}
	r.table = t
	return nil
}
