package multiraft

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"myraft/internal/opid"
	"myraft/internal/raft"
	"myraft/internal/wire"
)

// slowStore is a LogStore stub whose Sync takes real time, so concurrent
// requests pile up behind the group worker and coalesce.
type slowStore struct {
	syncs  atomic.Int64
	delay  time.Duration
	err    error
	anchor opid.OpID
}

func (s *slowStore) Append(*wire.LogEntry) error                    { return nil }
func (s *slowStore) Entry(uint64) (*wire.LogEntry, error)           { return nil, errors.New("empty") }
func (s *slowStore) LastOpID() opid.OpID                            { return opid.Zero }
func (s *slowStore) FirstIndex() uint64                             { return 0 }
func (s *slowStore) TruncateAfter(uint64) ([]*wire.LogEntry, error) { return nil, nil }
func (s *slowStore) Sync() error {
	s.syncs.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.err
}
func (s *slowStore) SnapshotAnchor() opid.OpID { return s.anchor }
func (s *slowStore) ScanFrom(from uint64, fn func(*wire.LogEntry) bool) error {
	return nil
}

func TestSyncGroupCoalesces(t *testing.T) {
	g := NewSyncGroup()
	defer g.Close()
	stores := []*slowStore{{delay: 2 * time.Millisecond}, {delay: 2 * time.Millisecond}}
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		st := stores[i%2]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := g.Sync(st); err != nil {
					t.Errorf("Sync: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	stats := g.Stats()
	if stats.Requests != callers*10 {
		t.Fatalf("requests = %d, want %d", stats.Requests, callers*10)
	}
	physical := stores[0].syncs.Load() + stores[1].syncs.Load()
	if physical != stats.Syncs {
		t.Fatalf("stats.Syncs = %d but stores saw %d", stats.Syncs, physical)
	}
	if physical >= stats.Requests {
		t.Fatalf("no coalescing: %d physical syncs for %d requests", physical, stats.Requests)
	}
}

func TestSyncGroupPropagatesErrors(t *testing.T) {
	g := NewSyncGroup()
	defer g.Close()
	boom := errors.New("fsync: device lost")
	st := &slowStore{err: boom}
	if err := g.Sync(st); !errors.Is(err, boom) {
		t.Fatalf("Sync = %v, want %v", err, boom)
	}
}

func TestSyncGroupClosedFallsBack(t *testing.T) {
	g := NewSyncGroup()
	g.Close()
	st := &slowStore{}
	if err := g.Sync(st); err != nil {
		t.Fatal(err)
	}
	if st.syncs.Load() != 1 {
		t.Fatalf("closed group did not fall back to direct sync: %d", st.syncs.Load())
	}
}

// The wrapper must keep satisfying the optional interfaces raft probes
// for at Start — hiding ScanFrom or SnapshotAnchor would silently break
// recovery and the snapshot boundary.
func TestWrapForwardsOptionalInterfaces(t *testing.T) {
	g := NewSyncGroup()
	defer g.Close()
	anchor := opid.OpID{Term: 3, Index: 77}
	wrapped := g.Wrap(&slowStore{anchor: anchor})
	a, ok := wrapped.(interface{ SnapshotAnchor() opid.OpID })
	if !ok {
		t.Fatal("wrapper hides SnapshotAnchor")
	}
	if got := a.SnapshotAnchor(); got != anchor {
		t.Fatalf("SnapshotAnchor = %+v, want %+v", got, anchor)
	}
	if _, ok := wrapped.(interface {
		ScanFrom(from uint64, fn func(*wire.LogEntry) bool) error
	}); !ok {
		t.Fatal("wrapper hides ScanFrom")
	}
	var _ raft.LogStore = wrapped
}
