package multiraft

// client.go is the shard-aware client: every key is routed through the
// runtime's Router to its owning shard, then served by that shard's
// single-ring client — writes go to the shard primary via discovery, and
// the PR 1 read levels (linearizable / lease / session) apply per shard
// unchanged, because each shard is a full replicaset.
//
// Writes participate in the split cutover protocol: each attempt routes
// under one table version, registers in-flight in the runtime's write
// gate, and revalidates the route before touching the shard. A reload
// between route and revalidation is a stale-version rejection (the write
// re-routes and retries); a fenced range is a fence wait (the split is
// draining or copying that subrange — back off and retry until the new
// owner is published). Both outcomes are counted on the runtime.

import (
	"context"
	"errors"
	"sync"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/readpath"
	"myraft/internal/wire"
)

// ErrFenced reports a single-attempt write against a range fenced by an
// in-progress shard split.
var ErrFenced = errors.New("multiraft: range fenced by shard split")

// Client routes keys to shards and shard traffic to shard primaries.
// Per-shard clients are created lazily so a client built before a split
// can keep writing after new shards appear.
type Client struct {
	rt  *Runtime
	rtt time.Duration
	// RetryInterval paces re-routing after fence waits and stale-version
	// rejections.
	RetryInterval time.Duration

	mu      sync.Mutex
	clients map[wire.ShardID]*cluster.Client

	// testAfterAdmit, when set, runs between in-flight admission and
	// route revalidation — the window a concurrent Reload turns into a
	// stale-version rejection. Tests use it to exercise that path
	// deterministically; it is nil in production.
	testAfterAdmit func()
}

// NewClient creates a routed client with the given simulated client RTT
// (applied per shard attempt, as in cluster.Client).
func (rt *Runtime) NewClient(rtt time.Duration) *Client {
	return &Client{
		rt:            rt,
		rtt:           rtt,
		RetryInterval: 2 * time.Millisecond,
		clients:       make(map[wire.ShardID]*cluster.Client),
	}
}

// ShardFor reports which shard serves the key under the current table.
func (c *Client) ShardFor(key string) wire.ShardID { return c.rt.router.ShardFor(key) }

// shardClient returns (creating on first use) the single-ring client for
// one shard.
func (c *Client) shardClient(shard wire.ShardID) *cluster.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.clients[shard]
	if cl == nil {
		ring := c.rt.Shard(shard)
		if ring == nil {
			return nil
		}
		cl = ring.NewClient(c.rtt)
		c.clients[shard] = cl
	}
	return cl
}

// routedClient resolves the key's owning shard under the current table
// (reads tolerate fencing: the fenced range still names the shard that
// serves its data).
func (c *Client) routedClient(key string) *cluster.Client {
	return c.shardClient(c.rt.router.ShardFor(key))
}

// Write upserts key=value on the owning shard's primary, retrying across
// failovers, fence waits, and routing-table reloads until ctx expires.
func (c *Client) Write(ctx context.Context, key string, value []byte) (cluster.WriteResult, error) {
	start := time.Now()
	retries := 0
	for {
		res, err := c.tryRoutedWrite(ctx, key, value)
		if err == nil {
			res.Retries = retries
			res.Latency = time.Since(start)
			return res, nil
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return cluster.WriteResult{}, err
		}
		retries++
		select {
		case <-ctx.Done():
			return cluster.WriteResult{}, ctx.Err()
		case <-time.After(c.retryInterval()):
		}
	}
}

// TryWrite attempts one write on the owning shard without failover or
// reroute retries. A fenced range fails with ErrFenced; a table reload
// between route and revalidation fails like a failed attempt.
func (c *Client) TryWrite(ctx context.Context, key string, value []byte) (cluster.WriteResult, error) {
	return c.tryRoutedWrite(ctx, key, value)
}

// tryRoutedWrite performs one route → admit → revalidate → write attempt.
func (c *Client) tryRoutedWrite(ctx context.Context, key string, value []byte) (cluster.WriteResult, error) {
	ri := c.rt.router.Route(key)
	if ri.Fenced {
		c.rt.fenceWaits.Add(1)
		return cluster.WriteResult{}, ErrFenced
	}
	release := c.rt.gate.enter(ri.Version)
	defer release()
	if c.testAfterAdmit != nil {
		c.testAfterAdmit()
	}
	if cur := c.rt.router.Route(key); cur != ri {
		// The table moved under us after we were admitted: writing to the
		// shard we resolved could land the row on a ring that no longer
		// (or doesn't yet) own it. Reject as stale and let Write re-route.
		c.rt.staleRejects.Add(1)
		return cluster.WriteResult{}, errors.New("multiraft: stale routing table version, rerouting")
	}
	cl := c.shardClient(ri.Shard)
	if cl == nil {
		return cluster.WriteResult{}, errors.New("multiraft: routed to unknown shard")
	}
	return cl.TryWrite(ctx, key, value)
}

func (c *Client) retryInterval() time.Duration {
	if c.RetryInterval > 0 {
		return c.RetryInterval
	}
	return 2 * time.Millisecond
}

// Read serves a default-level read from the owning shard.
func (c *Client) Read(ctx context.Context, key string) ([]byte, bool, error) {
	return c.routedClient(key).Read(ctx, key)
}

// ReadLinearizable serves a linearizable (ReadIndex) read from the owning
// shard's leader.
func (c *Client) ReadLinearizable(ctx context.Context, key string) (readpath.Result, error) {
	return c.routedClient(key).ReadLinearizable(ctx, key)
}

// ReadLease serves a leader-lease read from the owning shard.
func (c *Client) ReadLease(ctx context.Context, key string) (readpath.Result, error) {
	return c.routedClient(key).ReadLease(ctx, key)
}

// ReadSession serves a session-consistent read for the key from the given
// member of the owning shard, using the session token accumulated by this
// client's writes to that shard.
func (c *Client) ReadSession(ctx context.Context, id wire.NodeID, key string) (readpath.Result, error) {
	return c.routedClient(key).ReadSession(ctx, id, key)
}

// SessionToken reports the session token this client has accumulated on
// the key's owning shard (its last committed OpID there). Tokens are per
// ring: writes to other shards do not advance it.
func (c *Client) SessionToken(key string) readpath.Token {
	return c.routedClient(key).SessionToken()
}
