package multiraft

// client.go is the shard-aware client: every key is routed through the
// runtime's Router to its owning shard, then served by that shard's
// single-ring client — writes go to the shard primary via discovery, and
// the PR 1 read levels (linearizable / lease / session) apply per shard
// unchanged, because each shard is a full replicaset.

import (
	"context"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/readpath"
	"myraft/internal/wire"
)

// Client routes keys to shards and shard traffic to shard primaries.
type Client struct {
	rt      *Runtime
	clients []*cluster.Client
}

// NewClient creates a routed client with the given simulated client RTT
// (applied per shard attempt, as in cluster.Client).
func (rt *Runtime) NewClient(rtt time.Duration) *Client {
	c := &Client{rt: rt}
	for _, shard := range rt.shards {
		c.clients = append(c.clients, shard.NewClient(rtt))
	}
	return c
}

// ShardFor reports which shard serves the key under the current table.
func (c *Client) ShardFor(key string) wire.ShardID { return c.rt.router.ShardFor(key) }

// shardClient routes one key.
func (c *Client) shardClient(key string) *cluster.Client {
	return c.clients[c.rt.router.ShardFor(key)]
}

// Write upserts key=value on the owning shard's primary, retrying across
// failovers until ctx expires.
func (c *Client) Write(ctx context.Context, key string, value []byte) (cluster.WriteResult, error) {
	return c.shardClient(key).Write(ctx, key, value)
}

// TryWrite attempts one write on the owning shard without failover
// retries.
func (c *Client) TryWrite(ctx context.Context, key string, value []byte) (cluster.WriteResult, error) {
	return c.shardClient(key).TryWrite(ctx, key, value)
}

// Read serves a default-level read from the owning shard.
func (c *Client) Read(ctx context.Context, key string) ([]byte, bool, error) {
	return c.shardClient(key).Read(ctx, key)
}

// ReadLinearizable serves a linearizable (ReadIndex) read from the owning
// shard's leader.
func (c *Client) ReadLinearizable(ctx context.Context, key string) (readpath.Result, error) {
	return c.shardClient(key).ReadLinearizable(ctx, key)
}

// ReadLease serves a leader-lease read from the owning shard.
func (c *Client) ReadLease(ctx context.Context, key string) (readpath.Result, error) {
	return c.shardClient(key).ReadLease(ctx, key)
}

// ReadSession serves a session-consistent read for the key from the given
// member of the owning shard, using the session token accumulated by this
// client's writes to that shard.
func (c *Client) ReadSession(ctx context.Context, id wire.NodeID, key string) (readpath.Result, error) {
	return c.shardClient(key).ReadSession(ctx, id, key)
}
