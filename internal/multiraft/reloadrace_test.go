package multiraft

// reloadrace_test.go pits concurrent router table reloads against routed
// writes (run under -race via scripts/check.sh). The contract under test:
// a write admitted under table version V lands only on a shard that owned
// its key under V (no misroute, ever — Route resolves version and shard
// under one lock, and the client revalidates after admission), and every
// stale-version rejection is retried until the write succeeds.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"myraft/internal/wire"
)

// TestStaleRejectionRetriesToSuccess drives the admit→revalidate window
// deterministically: a Reload lands exactly between a write's in-flight
// admission and its route revalidation. The single attempt must be
// rejected as stale (counted, no data written), and the retrying Write
// must converge on the new table.
func TestStaleRejectionRetriesToSuccess(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rt, err := New(testOptions(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}

	// A key in the top quarter, whose owner flips 1 -> 0 on reload.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("stale-key-%d", i)
		if hashKey(key) >= uint32(3*(uint64(math.MaxUint32)+1)/4) {
			break
		}
	}
	flip := Table{Version: 2, Ranges: []Range{
		{Start: 0, End: uint32(3*(uint64(math.MaxUint32)+1)/4) - 1, Shard: 0},
		{Start: uint32(3 * (uint64(math.MaxUint32) + 1) / 4), End: math.MaxUint32, Shard: 0},
	}}

	cl := rt.NewClient(0)
	fired := false
	cl.testAfterAdmit = func() {
		if fired {
			return
		}
		fired = true
		if err := rt.Router().Reload(flip); err != nil {
			t.Errorf("reload: %v", err)
		}
	}

	before := rt.StaleRejects()
	res, err := cl.Write(ctx, key, []byte("v1"))
	if err != nil {
		t.Fatalf("write after stale rejection: %v", err)
	}
	if !fired {
		t.Fatal("test hook never fired")
	}
	if got := rt.StaleRejects(); got != before+1 {
		t.Fatalf("stale rejects = %d, want %d", got, before+1)
	}
	if res.Retries == 0 {
		t.Fatalf("write reported no retries; the stale rejection was not retried")
	}
	// The row must exist on the NEW owner (shard 0) and not on the ring
	// the stale attempt had resolved (shard 1).
	if got := rt.Router().ShardFor(key); got != 0 {
		t.Fatalf("key routes to shard %d, want 0", got)
	}
	p0, err := rt.Shard(0).AnyPrimary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, found := p0.Server().Read(key); !found || string(v) != "v1" {
		t.Fatalf("key missing on new owner: found=%v v=%q", found, v)
	}
	p1, err := rt.Shard(1).AnyPrimary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := p1.Server().Read(key); found {
		t.Fatal("stale attempt leaked the row onto the old owner")
	}
}

func TestRouterReloadRacingRoutedWrites(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rt, err := New(testOptions(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}

	// Two alternating table layouts. The bottom three quarters of the
	// ring are stable (same owner in both); the top quarter flaps between
	// shard 1 and shard 0 on every reload, so in-flight writes to it keep
	// hitting stale-version rejections.
	const (
		half = uint32(math.MaxUint32/2) + 1 // 0x80000000
		flap = uint32(3 * (uint64(math.MaxUint32) + 1) / 4)
	)
	layout := func(version uint64, top wire.ShardID) Table {
		return Table{Version: version, Ranges: []Range{
			{Start: 0, End: half - 1, Shard: 0},
			{Start: half, End: flap - 1, Shard: 1},
			{Start: flap, End: math.MaxUint32, Shard: top},
		}}
	}

	// Pre-sort probe keys into stable (fixed owner under every layout)
	// and flapping (top-quarter) families.
	var stableKeys, flapKeys []string
	stableOwner := make(map[string]wire.ShardID)
	for i := 0; len(stableKeys) < 32 || len(flapKeys) < 32; i++ {
		k := fmt.Sprintf("race-key-%d", i)
		h := hashKey(k)
		switch {
		case h < flap && len(stableKeys) < 32:
			stableKeys = append(stableKeys, k)
			if h < half {
				stableOwner[k] = 0
			} else {
				stableOwner[k] = 1
			}
		case h >= flap && len(flapKeys) < 32:
			flapKeys = append(flapKeys, k)
		}
	}

	var (
		stop   atomic.Bool
		failed atomic.Int64
		wrote  atomic.Int64
		wg     sync.WaitGroup
	)
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := rt.NewClient(0)
			for i := 0; !stop.Load(); i++ {
				key := stableKeys[(w+i)%len(stableKeys)]
				if i%2 == 1 {
					key = flapKeys[(w+i)%len(flapKeys)]
				}
				wctx, wcancel := context.WithTimeout(ctx, 20*time.Second)
				_, err := cl.Write(wctx, key, []byte(fmt.Sprintf("w%d-%d", w, i)))
				wcancel()
				if err != nil {
					if ctx.Err() == nil {
						failed.Add(1)
					}
					return
				}
				wrote.Add(1)
			}
		}(w)
	}

	// Reload continuously while writes are in flight, alternating the
	// flapping quarter's owner. Run at least 100 generations, extending
	// up to a soft deadline hoping to catch a reload inside a write's
	// admit→revalidate window (a stale rejection); the no-misroute and
	// retry-to-success properties hold and are checked either way.
	version := uint64(1)
	soft := time.Now().Add(10 * time.Second)
	for gen := 0; version < 100 || (rt.StaleRejects() == 0 && time.Now().Before(soft)); gen++ {
		version++
		top := wire.ShardID(gen % 2)
		if err := rt.Router().Reload(layout(version, top)); err != nil {
			t.Fatalf("reload v%d: %v", version, err)
		}
		time.Sleep(time.Millisecond)
	}
	// A stale reload must be rejected, not applied.
	if err := rt.Router().Reload(layout(version, 0)); err == nil {
		t.Fatal("stale-version reload was accepted")
	}
	stop.Store(true)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d routed writes failed despite retries (stale rejections must retry to success)", failed.Load())
	}
	if wrote.Load() == 0 {
		t.Fatal("no writes completed")
	}
	t.Logf("completed %d writes across %d table generations, stale rejects=%d fence waits=%d",
		wrote.Load(), version, rt.StaleRejects(), rt.FenceWaits())

	// No misroute: a stable key must never appear on the ring that never
	// owned it, on any member's engine.
	for s := 0; s < rt.Shards(); s++ {
		c := rt.Shard(wire.ShardID(s))
		for _, m := range c.Members() {
			if m.Server() == nil || m.IsDown() {
				continue
			}
			for _, k := range stableKeys {
				if stableOwner[k] == wire.ShardID(s) {
					continue
				}
				if _, found := m.Server().Read(k); found {
					t.Fatalf("misroute: stable key %s (owner shard %d) found on shard %d member %s",
						k, stableOwner[k], s, m.Spec.ID)
				}
			}
		}
	}
}
