package multiraft

// syncgroup.go is the shared-resource half of the runtime's storage
// story: a process hosting 16 shards must not run 16 independent fsync
// schedules against the same device. One SyncGroup per node funnels every
// shard's log-writer Sync through a single worker goroutine — requests
// that arrive while a sync is in flight coalesce per store (the PR 2
// group-commit rule, applied across rings), and distinct stores'
// syncs serialize, modeling one disk per node.

import (
	"sync"

	"myraft/internal/opid"
	"myraft/internal/raft"
	"myraft/internal/wire"
)

// SyncGroupStats snapshots one group's coalescing counters.
type SyncGroupStats struct {
	// Requests counts Sync calls from shard log writers.
	Requests int64
	// Syncs counts physical Sync calls issued to stores. Requests/Syncs
	// is the cross-shard coalescing factor.
	Syncs int64
}

// SyncGroup coalesces fsync requests from every shard hosted on one node.
type SyncGroup struct {
	mu       sync.Mutex
	pending  map[raft.LogStore]*syncBatch
	queue    []*syncBatch
	requests int64
	syncs    int64
	closed   bool

	wake chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// syncBatch is one scheduled physical sync of one store; every request
// that arrives before the worker takes the batch shares its result.
type syncBatch struct {
	store raft.LogStore
	done  chan struct{}
	err   error
}

// NewSyncGroup starts a group with its worker goroutine.
func NewSyncGroup() *SyncGroup {
	g := &SyncGroup{
		pending: make(map[raft.LogStore]*syncBatch),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

// Sync schedules a durability barrier for store and blocks until a
// physical sync that began after this call completes. Concurrent callers
// for the same store share one sync.
func (g *SyncGroup) Sync(store raft.LogStore) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		// The group is gone (process shutdown); degrade to a direct sync
		// so no shard ever loses its durability barrier.
		return store.Sync()
	}
	g.requests++
	b := g.pending[store]
	if b == nil {
		b = &syncBatch{store: store, done: make(chan struct{})}
		g.pending[store] = b
		g.queue = append(g.queue, b)
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
	g.mu.Unlock()
	<-b.done
	return b.err
}

// run is the worker: it drains the batch queue, issuing one physical
// sync per batch. Batches are removed from pending before their sync
// starts, so a request arriving mid-sync gets a fresh batch (its barrier
// must begin after the request).
func (g *SyncGroup) run() {
	defer g.wg.Done()
	for {
		select {
		case <-g.done:
			g.drain()
			return
		case <-g.wake:
			g.drain()
		}
	}
}

func (g *SyncGroup) drain() {
	for {
		g.mu.Lock()
		if len(g.queue) == 0 {
			g.mu.Unlock()
			return
		}
		batch := g.queue
		g.queue = nil
		for _, b := range batch {
			delete(g.pending, b.store)
		}
		g.syncs += int64(len(batch))
		g.mu.Unlock()
		for _, b := range batch {
			b.err = b.store.Sync()
			close(b.done)
		}
	}
}

// Stats snapshots the coalescing counters.
func (g *SyncGroup) Stats() SyncGroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return SyncGroupStats{Requests: g.requests, Syncs: g.syncs}
}

// Close stops the worker after it drains outstanding batches. Later Sync
// calls fall back to direct store syncs.
func (g *SyncGroup) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	close(g.done)
	g.wg.Wait()
}

// Wrap returns store with Sync redirected through the group. The wrapper
// forwards the optional fast paths raft probes for (sequential scans,
// snapshot anchors), following the logstore wrapper idiom — hiding them
// would silently slow recovery and break the snapshot boundary.
func (g *SyncGroup) Wrap(store raft.LogStore) raft.LogStore {
	return &groupedStore{inner: store, g: g}
}

type groupedStore struct {
	inner raft.LogStore
	g     *SyncGroup
}

func (s *groupedStore) Append(e *wire.LogEntry) error              { return s.inner.Append(e) }
func (s *groupedStore) Entry(index uint64) (*wire.LogEntry, error) { return s.inner.Entry(index) }
func (s *groupedStore) LastOpID() opid.OpID                        { return s.inner.LastOpID() }
func (s *groupedStore) FirstIndex() uint64                         { return s.inner.FirstIndex() }
func (s *groupedStore) TruncateAfter(index uint64) ([]*wire.LogEntry, error) {
	return s.inner.TruncateAfter(index)
}

// Sync routes the durability barrier through the shared per-node group.
func (s *groupedStore) Sync() error { return s.g.Sync(s.inner) }

// SnapshotAnchor forwards the inner store's snapshot anchor when it has
// one, so wrapping does not hide the snapshot boundary from raft.
func (s *groupedStore) SnapshotAnchor() opid.OpID {
	if a, ok := s.inner.(interface{ SnapshotAnchor() opid.OpID }); ok {
		return a.SnapshotAnchor()
	}
	return opid.Zero
}

// ScanFrom forwards to the inner store's sequential scan when it has one,
// falling back to per-entry reads otherwise.
func (s *groupedStore) ScanFrom(from uint64, fn func(*wire.LogEntry) bool) error {
	type scanner interface {
		ScanFrom(from uint64, fn func(*wire.LogEntry) bool) error
	}
	if sc, ok := s.inner.(scanner); ok {
		return sc.ScanFrom(from, fn)
	}
	last := s.inner.LastOpID().Index
	for idx := from; idx != 0 && idx <= last; idx++ {
		e, err := s.inner.Entry(idx)
		if err != nil {
			return err
		}
		if !fn(e) {
			return nil
		}
	}
	return nil
}
