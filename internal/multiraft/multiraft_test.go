package multiraft

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"myraft/internal/cluster"
	"myraft/internal/raft"
	"myraft/internal/transport"
	"myraft/internal/wire"
)

func threeNodeSpecs() []cluster.MemberSpec {
	return []cluster.MemberSpec{
		{ID: "n0", Region: "r1", Kind: cluster.KindMySQL, Voter: true},
		{ID: "n1", Region: "r1", Kind: cluster.KindMySQL, Voter: true},
		{ID: "n2", Region: "r1", Kind: cluster.KindMySQL, Voter: true},
	}
}

func testOptions(t *testing.T, shards int) Options {
	t.Helper()
	return Options{
		Shards: shards,
		Specs:  threeNodeSpecs(),
		Dir:    t.TempDir(),
		Raft: raft.Config{
			HeartbeatInterval: 20 * time.Millisecond,
		},
		NetConfig: transport.Config{
			IntraRegion: 200 * time.Microsecond,
			CrossRegion: time.Millisecond,
		},
		Seed: 1,
	}
}

// bootstrapAllAt elects node id the initial leader of every shard,
// concurrently.
func bootstrapAllAt(ctx context.Context, t *testing.T, rt *Runtime, id wire.NodeID) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, rt.Shards())
	for s := 0; s < rt.Shards(); s++ {
		wg.Add(1)
		go func(shard wire.ShardID) {
			defer wg.Done()
			errs <- rt.Shard(shard).Bootstrap(ctx, id)
		}(wire.ShardID(s))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// keyForShard finds a key the router sends to the given shard.
func keyForShard(r *Router, shard wire.ShardID) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("shard-%d-key-%d", shard, i)
		if r.ShardFor(k) == shard {
			return k
		}
	}
}

// The acceptance scenario: 3 nodes × 16 shards in one process set. Every
// shard elects a leader, serves routed writes and linearizable reads, and
// the balancer spreads leadership to ≤ ⌈shards/up-nodes⌉ + 1 per node.
func TestRuntimeSixteenShards(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const shards = 16
	rt, err := New(testOptions(t, shards))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// All leaders start on n0 so the balancer has real work below.
	bootstrapAllAt(ctx, t, rt, "n0")
	for _, st := range rt.ShardStatuses() {
		if st.Leader == "" {
			t.Fatalf("shard %d has no leader after bootstrap", st.Shard)
		}
	}

	// Routed writes and linearizable reads on every shard.
	cl := rt.NewClient(0)
	for s := wire.ShardID(0); s < shards; s++ {
		key := keyForShard(rt.Router(), s)
		want := []byte(fmt.Sprintf("value-%d", s))
		if _, err := cl.Write(ctx, key, want); err != nil {
			t.Fatalf("write to shard %d: %v", s, err)
		}
		res, err := cl.ReadLinearizable(ctx, key)
		if err != nil {
			t.Fatalf("linearizable read from shard %d: %v", s, err)
		}
		if !res.Found || string(res.Value) != string(want) {
			t.Fatalf("shard %d read = %q found=%v, want %q", s, res.Value, res.Found, want)
		}
	}

	// Balance: from 16 leaders on one node to an even spread.
	target := (shards + 2) / 3 // ⌈16/3⌉ = 6
	deadline := time.Now().Add(time.Minute)
	for {
		rt.BalanceOnce(ctx)
		max := 0
		for _, shardIDs := range rt.LeadersByNode() {
			if len(shardIDs) > max {
				max = len(shardIDs)
			}
		}
		if max <= target {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("balancer did not converge: max %d > %d+1, leaders %v",
				max, target, rt.LeadersByNode())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Leadership must not have been lost anywhere in the shuffle.
	total := 0
	for _, shardIDs := range rt.LeadersByNode() {
		total += len(shardIDs)
	}
	if total != shards {
		t.Fatalf("leaders lost during balancing: %v", rt.LeadersByNode())
	}

	// The demux never routed a message to a shard a node does not host.
	for _, id := range rt.Nodes() {
		if drops := rt.Demux(id).Stats().UnknownShardDrops; drops != 0 {
			t.Fatalf("node %s dropped %d unknown-shard messages", id, drops)
		}
	}

	// The metrics rollup reflects the survey: runtime scope carries the
	// shard count, per-node registries carry leaders-held — as properly
	// named families with the node as a label dimension, never a node ID
	// baked into a metric name.
	snap := rt.Metrics().Snapshot()
	if snap["shards_hosted"] != shards {
		t.Fatalf("shards_hosted = %d", snap["shards_hosted"])
	}
	if snap["router_table_version"] != 1 {
		t.Fatalf("router_table_version = %d, want 1", snap["router_table_version"])
	}
	var held int64
	for _, nr := range rt.NodeRegistries() {
		held += nr.Reg.Snapshot()["multiraft_leaders_held"]
	}
	if held != shards {
		t.Fatalf("multiraft_leaders_held sums to %d, want %d", held, shards)
	}
}

// Heartbeat coalescing on the wire: with 8 shard leaders on one node,
// each peer receives ONE physical heartbeat message per interval, not 8.
func TestRuntimeCoalescedHeartbeatRate(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	const shards = 8
	const hb = 20 * time.Millisecond
	opts := testOptions(t, shards)
	opts.Raft.HeartbeatInterval = hb
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	bootstrapAllAt(ctx, t, rt, "n0")

	// Settle, then measure a window of whole intervals.
	time.Sleep(4 * hb)
	before := rt.Demux("n0").Stats()
	const intervals = 20
	time.Sleep(intervals * hb)
	after := rt.Demux("n0").Stats()

	for _, peer := range []wire.NodeID{"n1", "n2"} {
		flushes := after.CoalescedFlushes[peer] - before.CoalescedFlushes[peer]
		// One message per interval: allow slack for scheduling, but the
		// un-coalesced rate (shards per interval) must be unreachable.
		if flushes < intervals/2 || flushes > intervals*2 {
			t.Fatalf("peer %s saw %d coalesced flushes over %d intervals, want ≈%d",
				peer, flushes, intervals, intervals)
		}
	}
	// Each flush piggybacked (close to) every shard's heartbeat.
	flushDelta := int64(0)
	for _, peer := range []wire.NodeID{"n1", "n2"} {
		flushDelta += after.CoalescedFlushes[peer] - before.CoalescedFlushes[peer]
	}
	itemDelta := after.CoalescedItems - before.CoalescedItems
	if fanout := float64(itemDelta) / float64(flushDelta); fanout < shards/2 {
		t.Fatalf("coalescing fan-out %.1f, want ≥ %d (items %d over %d flushes)",
			fanout, shards/2, itemDelta, flushDelta)
	}

	// Coalesced delivery kept every ring stable: all leaders still on n0,
	// terms unchanged enough that every shard has exactly one leader.
	for _, st := range rt.ShardStatuses() {
		if st.Leader != "n0" {
			t.Fatalf("shard %d leadership moved to %s under coalescing", st.Shard, st.Leader)
		}
	}
}

// A node crash takes all its rings down together; restart rejoins them
// all through the same demux ports, and writes keep flowing throughout.
func TestRuntimeCrashRestartAcrossShards(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rt, err := New(testOptions(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	bootstrapAllAt(ctx, t, rt, "n0")

	if err := rt.Crash("n1"); err != nil {
		t.Fatal(err)
	}
	cl := rt.NewClient(0)
	for s := wire.ShardID(0); s < 4; s++ {
		key := keyForShard(rt.Router(), s)
		if _, err := cl.Write(ctx, key, []byte("during-crash")); err != nil {
			t.Fatalf("write to shard %d with n1 down: %v", s, err)
		}
	}
	if up := rt.UpNodes(); len(up) != 2 {
		t.Fatalf("UpNodes = %v", up)
	}
	if err := rt.Restart("n1"); err != nil {
		t.Fatal(err)
	}
	// n1 must catch up on every shard: its commit index reaches each
	// shard leader's write.
	for s := wire.ShardID(0); s < 4; s++ {
		key := keyForShard(rt.Router(), s)
		if _, err := cl.Write(ctx, key, []byte("after-restart")); err != nil {
			t.Fatalf("write to shard %d after restart: %v", s, err)
		}
		res, err := cl.ReadSession(ctx, "n1", key)
		if err != nil {
			t.Fatalf("session read from n1 on shard %d: %v", s, err)
		}
		if string(res.Value) != "after-restart" {
			t.Fatalf("n1 shard %d value %q", s, res.Value)
		}
	}
}
