package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"myraft/internal/gtid"
	"myraft/internal/opid"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	data, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendEntriesReqRoundTrip(t *testing.T) {
	m := &AppendEntriesReq{
		Term:     7,
		LeaderID: "mysql-1",
		PrevOpID: opid.OpID{Term: 6, Index: 41},
		Entries: []LogEntry{
			{
				OpID:    opid.OpID{Term: 7, Index: 42},
				Kind:    1,
				HasGTID: true,
				GTID:    gtid.GTID{Source: "uuid-1", ID: 9},
				Payload: []byte("row data"),
			},
			{OpID: opid.OpID{Term: 7, Index: 43}, Kind: 2},
		},
		CommitIndex: 41,
		ReadSeq:     17,
		Route:       []NodeID{"lt-1", "mysql-2"},
		ReturnPath:  []NodeID{"mysql-1"},
	}
	got := roundTrip(t, m).(*AppendEntriesReq)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", m, got)
	}
}

func TestProxyEntryDropsPayload(t *testing.T) {
	full := &AppendEntriesReq{
		Term:     1,
		LeaderID: "l",
		Entries: []LogEntry{{
			OpID:    opid.OpID{Term: 1, Index: 1},
			Payload: bytes.Repeat([]byte("x"), 500),
		}},
		Route: []NodeID{"f"},
	}
	proxy := &AppendEntriesReq{
		Term:     1,
		LeaderID: "l",
		Entries: []LogEntry{{
			OpID:    opid.OpID{Term: 1, Index: 1},
			Payload: bytes.Repeat([]byte("x"), 500),
			IsProxy: true,
		}},
		Route: []NodeID{"f"},
	}
	fullBytes, err := Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	proxyBytes, err := Marshal(proxy)
	if err != nil {
		t.Fatal(err)
	}
	if len(proxyBytes) >= len(fullBytes)-400 {
		t.Fatalf("PROXY_OP not smaller: full=%d proxy=%d", len(fullBytes), len(proxyBytes))
	}
	got, err := Unmarshal(proxyBytes)
	if err != nil {
		t.Fatal(err)
	}
	e := got.(*AppendEntriesReq).Entries[0]
	if !e.IsProxy || e.Payload != nil {
		t.Fatalf("proxy entry decoded wrong: %+v", e)
	}
}

func TestAppendEntriesRespRoundTrip(t *testing.T) {
	m := &AppendEntriesResp{Term: 3, From: "f1", Success: true, MatchIndex: 10, LastIndex: 12, ReadSeq: 17, Route: []NodeID{"p", "l"}}
	got := roundTrip(t, m).(*AppendEntriesResp)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("mismatch: %+v vs %+v", m, got)
	}
}

func TestRequestVoteRoundTrip(t *testing.T) {
	req := &RequestVoteReq{Term: 5, Candidate: "c", LastOpID: opid.OpID{Term: 4, Index: 99}, Kind: VoteMock, Snapshot: opid.OpID{Term: 4, Index: 98}}
	gotReq := roundTrip(t, req).(*RequestVoteReq)
	if !reflect.DeepEqual(req, gotReq) {
		t.Fatalf("req mismatch: %+v vs %+v", req, gotReq)
	}
	resp := &RequestVoteResp{Term: 5, From: "v", Granted: false, Kind: VotePre, Reason: "lagging"}
	gotResp := roundTrip(t, resp).(*RequestVoteResp)
	if !reflect.DeepEqual(resp, gotResp) {
		t.Fatalf("resp mismatch: %+v vs %+v", resp, gotResp)
	}
}

func TestStartElectionRoundTrip(t *testing.T) {
	m := &StartElection{Term: 9, From: "leader", Mock: true, Snapshot: opid.OpID{Term: 9, Index: 1234}}
	got := roundTrip(t, m).(*StartElection)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("mismatch: %+v vs %+v", m, got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty unmarshal succeeded")
	}
	if _, err := Unmarshal([]byte{99}); err == nil {
		t.Fatal("unknown tag succeeded")
	}
	data, _ := Marshal(&RequestVoteReq{Term: 1, Candidate: "c"})
	if _, err := Unmarshal(data[:len(data)-3]); err == nil {
		t.Fatal("truncated unmarshal succeeded")
	}
	if _, err := Unmarshal(append(data, 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	c := Config{Members: []Member{
		{ID: "mysql-1", Region: "prn", Voter: true},
		{ID: "lt-1", Region: "prn", Voter: true, Witness: true},
		{ID: "learner-1", Region: "ftw", Voter: false},
	}}
	got, err := DecodeConfig(EncodeConfig(c))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("mismatch: %+v vs %+v", c, got)
	}
}

func TestConfigDecodeErrors(t *testing.T) {
	if _, err := DecodeConfig(nil); err == nil {
		t.Fatal("nil config decoded")
	}
	enc := EncodeConfig(Config{Members: []Member{{ID: "a"}}})
	if _, err := DecodeConfig(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated config decoded")
	}
	if _, err := DecodeConfig(append(enc, 0)); err == nil {
		t.Fatal("trailing config bytes accepted")
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{Members: []Member{
		{ID: "m1", Region: "r1", Voter: true},
		{ID: "m2", Region: "r1", Voter: true, Witness: true},
		{ID: "m3", Region: "r2", Voter: true},
		{ID: "l1", Region: "r3", Voter: false},
	}}
	if len(c.Voters()) != 3 {
		t.Fatalf("Voters = %v", c.Voters())
	}
	regions := c.Regions()
	if len(regions) != 2 || regions[0] != "r1" || regions[1] != "r2" {
		t.Fatalf("Regions = %v", regions)
	}
	if len(c.VotersInRegion("r1")) != 2 {
		t.Fatalf("VotersInRegion(r1) = %v", c.VotersInRegion("r1"))
	}
	if _, ok := c.Find("m3"); !ok {
		t.Fatal("Find(m3) failed")
	}
	if _, ok := c.Find("nope"); ok {
		t.Fatal("Find(nope) succeeded")
	}
	clone := c.Clone()
	clone.Members[0].ID = "mutated"
	if c.Members[0].ID != "m1" {
		t.Fatal("Clone aliases original")
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(term uint64, from string, success bool, match, last uint64) bool {
		m := &AppendEntriesResp{Term: term, From: NodeID(from), Success: success, MatchIndex: match, LastIndex: last}
		data, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryPayloadRoundTripProperty(t *testing.T) {
	f := func(payload []byte, term, index uint64, gid int64) bool {
		m := &AppendEntriesReq{
			Term:     term,
			LeaderID: "l",
			Entries: []LogEntry{{
				OpID:    opid.OpID{Term: term, Index: index},
				HasGTID: gid > 0,
				GTID:    gtid.GTID{Source: "s", ID: gid},
				Payload: payload,
			}},
		}
		if gid <= 0 {
			m.Entries[0].GTID = gtid.GTID{Source: "s", ID: gid}
		}
		data, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		ge := got.(*AppendEntriesReq).Entries[0]
		return bytes.Equal(ge.Payload, payload) || (payload == nil && len(ge.Payload) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMockElectionResultRoundTrip(t *testing.T) {
	m := &MockElectionResult{Term: 4, From: "target", Success: true, Reason: "quorum ok"}
	got := roundTrip(t, m).(*MockElectionResult)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("mismatch: %+v vs %+v", m, got)
	}
}

func TestVoteRespCarriesLeaderHistory(t *testing.T) {
	m := &RequestVoteResp{Term: 8, From: "v", Granted: true, LastLeaderRegion: "prn", LastLeaderTerm: 7}
	got := roundTrip(t, m).(*RequestVoteResp)
	if got.LastLeaderRegion != "prn" || got.LastLeaderTerm != 7 {
		t.Fatalf("history lost: %+v", got)
	}
}

// Property: arbitrary bytes never panic the decoder; they either parse or
// error.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %x: %v", data, r)
			}
		}()
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of a valid message either fails to
// parse, or parses to a structurally valid message (no crash); it must
// never be mistaken for the original when the type tag changed.
func TestUnmarshalBitFlipRobust(t *testing.T) {
	orig := &AppendEntriesReq{
		Term:     3,
		LeaderID: "leader-1",
		PrevOpID: opid.OpID{Term: 2, Index: 9},
		Entries: []LogEntry{{
			OpID:    opid.OpID{Term: 3, Index: 10},
			HasGTID: true,
			GTID:    gtid.GTID{Source: "src", ID: 4},
			Payload: []byte("payload-bytes"),
		}},
		CommitIndex: 9,
	}
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic flipping byte %d: %v", i, r)
				}
			}()
			_, _ = Unmarshal(mut)
		}()
	}
}

// Property: DecodeConfig never panics on arbitrary bytes.
func TestDecodeConfigNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %x: %v", data, r)
			}
		}()
		_, _ = DecodeConfig(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInstallSnapshotRoundTrip(t *testing.T) {
	req := &InstallSnapshotReq{
		Term:     9,
		LeaderID: "mysql-0",
		Anchor:   opid.OpID{Term: 8, Index: 5000},
		GTIDSet:  "uuid-1:1-5000",
		Config:   EncodeConfig(Config{Members: []Member{{ID: "mysql-0", Region: "r1", Voter: true}}}),
		Total:    1 << 20,
		Offset:   256 << 10,
		Chunk:    bytes.Repeat([]byte("c"), 1024),
		Done:     false,
	}
	gotReq := roundTrip(t, req).(*InstallSnapshotReq)
	if !reflect.DeepEqual(req, gotReq) {
		t.Fatalf("req round trip mismatch:\n%+v\n%+v", req, gotReq)
	}

	resp := &InstallSnapshotResp{
		Term:       9,
		From:       "mysql-2",
		Success:    true,
		NextOffset: 257 << 10,
		Installed:  false,
	}
	gotResp := roundTrip(t, resp).(*InstallSnapshotResp)
	if !reflect.DeepEqual(resp, gotResp) {
		t.Fatalf("resp round trip mismatch:\n%+v\n%+v", resp, gotResp)
	}
}

func TestShardEnvelopeRoundTrip(t *testing.T) {
	inner, err := Marshal(&RequestVoteReq{Term: 3, Candidate: "mysql-1", LastOpID: opid.OpID{Term: 2, Index: 7}})
	if err != nil {
		t.Fatal(err)
	}
	m := &ShardEnvelope{Shard: 12, Inner: inner}
	got := roundTrip(t, m).(*ShardEnvelope)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("mismatch:\n%+v\n%+v", m, got)
	}
	innerMsg, err := Unmarshal(got.Inner)
	if err != nil {
		t.Fatal(err)
	}
	if innerMsg.(*RequestVoteReq).Candidate != "mysql-1" {
		t.Fatalf("inner message corrupted: %+v", innerMsg)
	}
}

func TestCoalescedHeartbeatRoundTrip(t *testing.T) {
	mkReq := func(shard uint64) []byte {
		data, err := Marshal(&AppendEntriesReq{Term: shard, LeaderID: "n0", CommitIndex: 10 * shard, ReadSeq: shard})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	m := &CoalescedHeartbeat{Items: []ShardHeartbeat{
		{Shard: 0, Req: mkReq(1)},
		{Shard: 3, Req: mkReq(2)},
		{Shard: 7, Req: mkReq(3)},
	}}
	got := roundTrip(t, m).(*CoalescedHeartbeat)
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("mismatch:\n%+v\n%+v", m, got)
	}
	// Empty coalesced heartbeat (no buffered shards) must survive too.
	empty := roundTrip(t, &CoalescedHeartbeat{}).(*CoalescedHeartbeat)
	if len(empty.Items) != 0 {
		t.Fatalf("empty coalesced heartbeat gained items: %+v", empty)
	}
}

func TestInstallSnapshotFinalChunk(t *testing.T) {
	// Empty trailing chunk with Done=true (pure "install now" signal) and
	// empty GTID set / config must survive the codec.
	req := &InstallSnapshotReq{
		Term:     2,
		LeaderID: "l",
		Anchor:   opid.OpID{Term: 2, Index: 7},
		Total:    0,
		Offset:   0,
		Done:     true,
	}
	got := roundTrip(t, req).(*InstallSnapshotReq)
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", req, got)
	}
	if !got.Done {
		t.Fatal("Done flag lost")
	}
}
