// Package wire defines the RPC messages exchanged by MyRaft nodes and
// their binary encoding. A hand-rolled codec (rather than gob/JSON) keeps
// message sizes deterministic, which the Proxying bandwidth evaluation
// (§4.2.2 of the paper) depends on: the whole point of PROXY_OP messages
// is that they carry request metadata but no payload, and the harness
// measures exactly how many bytes cross each region boundary.
package wire

import (
	"encoding/binary"
	"fmt"

	"myraft/internal/gtid"
	"myraft/internal/opid"
)

// NodeID identifies a member of the replicaset (MySQL instance or
// logtailer).
type NodeID string

// Region is a failure/latency domain (a geographical region in the paper).
type Region string

// MsgType discriminates wire messages.
type MsgType uint8

// Message type tags (stable; part of the wire format).
const (
	MsgAppendEntriesReq    MsgType = 1
	MsgAppendEntriesResp   MsgType = 2
	MsgRequestVoteReq      MsgType = 3
	MsgRequestVoteResp     MsgType = 4
	MsgStartElection       MsgType = 5
	MsgMockElectionResult  MsgType = 6
	MsgInstallSnapshotReq  MsgType = 7
	MsgInstallSnapshotResp MsgType = 8
	MsgShardEnvelope       MsgType = 9
	MsgCoalescedHeartbeat  MsgType = 10
)

// Message is implemented by every RPC payload.
type Message interface {
	Type() MsgType
}

// EntryType mirrors binlog entry types on the wire (the transport layer
// must not depend on the binlog package).
type EntryType uint8

// LogEntry is one replicated-log entry as carried by AppendEntries.
// IsProxy marks a PROXY_OP: metadata only, no payload; the final proxy
// node reconstitutes the payload from its own log before delivering to
// the destination (§4.2.1).
type LogEntry struct {
	OpID    opid.OpID
	Kind    EntryType
	HasGTID bool
	GTID    gtid.GTID
	Payload []byte
	IsProxy bool
}

// Member describes one replicaset member inside a Config.
type Member struct {
	ID      NodeID
	Region  Region
	Voter   bool // voters elect leaders; non-voters (learners) do not
	Witness bool // logtailer: has a log but no storage engine
}

// Config is the replicaset membership, replicated through the log as an
// EntryConfig payload. Only one membership change is allowed at a time
// (§2.2), so a Config fully replaces its predecessor.
type Config struct {
	Members []Member
}

// Clone returns a deep copy.
func (c Config) Clone() Config {
	return Config{Members: append([]Member(nil), c.Members...)}
}

// Find returns the member with the given ID, if present.
func (c Config) Find(id NodeID) (Member, bool) {
	for _, m := range c.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// Voters returns the voting members.
func (c Config) Voters() []Member {
	var out []Member
	for _, m := range c.Members {
		if m.Voter {
			out = append(out, m)
		}
	}
	return out
}

// Regions returns the distinct regions of voting members, in first-seen
// order.
func (c Config) Regions() []Region {
	var out []Region
	seen := make(map[Region]bool)
	for _, m := range c.Members {
		if m.Voter && !seen[m.Region] {
			seen[m.Region] = true
			out = append(out, m.Region)
		}
	}
	return out
}

// VotersInRegion returns the voting members of one region.
func (c Config) VotersInRegion(r Region) []Member {
	var out []Member
	for _, m := range c.Members {
		if m.Voter && m.Region == r {
			out = append(out, m)
		}
	}
	return out
}

// AppendEntriesReq is the Raft replication RPC. For proxied requests,
// Route holds the remaining downstream hops ending with the final
// destination; ReturnPath accumulates the hops taken so the response can
// be relayed back to the leader (§4.2).
type AppendEntriesReq struct {
	Term        uint64
	LeaderID    NodeID
	PrevOpID    opid.OpID
	Entries     []LogEntry
	CommitIndex uint64 // leader commit marker, piggybacked (§3.4)
	// ReadSeq is the leader's heartbeat-round sequence number. Followers
	// echo it so the leader can prove it was still the leader at the time
	// a round started: the quorum-acked round confirms leadership for
	// ReadIndex reads and renews the leader lease (internal/readpath).
	ReadSeq    uint64
	Route      []NodeID
	ReturnPath []NodeID
}

func (*AppendEntriesReq) Type() MsgType { return MsgAppendEntriesReq }

// AppendEntriesResp acknowledges replication. Route holds the remaining
// upstream hops back to the leader for proxied exchanges.
type AppendEntriesResp struct {
	Term       uint64
	From       NodeID
	Success    bool
	MatchIndex uint64 // highest log index known replicated on From
	LastIndex  uint64 // From's last log index (rejection hint)
	// ReadSeq echoes the request's heartbeat-round sequence. Even a
	// Success=false response (log mismatch) counts as a leadership ack:
	// the follower processed the request at the leader's term.
	ReadSeq uint64
	Route   []NodeID
}

func (*AppendEntriesResp) Type() MsgType { return MsgAppendEntriesResp }

// VoteKind selects the election round type.
type VoteKind uint8

const (
	// VoteReal is a regular Raft election round.
	VoteReal VoteKind = 0
	// VotePre is a Raft pre-election: no term is consumed.
	VotePre VoteKind = 1
	// VoteMock is a MyRaft mock election (§4.3): a simulated pre-check run
	// before TransferLeadership, carrying the current leader's cursor
	// snapshot. Voters in the candidate's region reject if they lag the
	// snapshot.
	VoteMock VoteKind = 2
)

// RequestVoteReq solicits a vote.
type RequestVoteReq struct {
	Term      uint64
	Candidate NodeID
	LastOpID  opid.OpID
	Kind      VoteKind
	Snapshot  opid.OpID // leader cursor snapshot for mock elections
}

func (*RequestVoteReq) Type() MsgType { return MsgRequestVoteReq }

// RequestVoteResp answers a vote solicitation. Granted responses carry
// the voter's view of the last known leader (region and term): FlexiRaft's
// single-region-dynamic mode derives the set of regions an election quorum
// must intersect from the voting history reported by granting voters
// (§4.1).
type RequestVoteResp struct {
	Term    uint64
	From    NodeID
	Granted bool
	Kind    VoteKind
	Reason  string // diagnostic, not used by the protocol

	LastLeaderRegion Region
	LastLeaderTerm   uint64
}

func (*RequestVoteResp) Type() MsgType { return MsgRequestVoteResp }

// MockElectionResult reports the outcome of a mock election round back to
// the leader that requested it (§4.3).
type MockElectionResult struct {
	Term    uint64
	From    NodeID
	Success bool
	Reason  string
}

func (*MockElectionResult) Type() MsgType { return MsgMockElectionResult }

// StartElection asks the target to begin an election round. The current
// leader sends it for graceful TransferLeadership (Mock=false, like Raft's
// TimeoutNow) and for the mock-election pre-check (Mock=true, carrying the
// leader's cursor snapshot).
type StartElection struct {
	Term     uint64
	From     NodeID
	Mock     bool
	Snapshot opid.OpID
}

func (*StartElection) Type() MsgType { return MsgStartElection }

// InstallSnapshotReq streams one chunk of an engine checkpoint to a
// follower whose log no longer overlaps the leader's (its nextIndex fell
// below the leader's FirstIndex after purging). Anchor is the snapshot's
// last applied op: after install the follower's log restarts empty at
// Anchor, and AppendEntries resumes at Anchor.Index+1. Snapshot transfer
// is always direct leader→target, never proxied: a PROXY_OP-style relay
// would require intermediate hops to buffer the full checkpoint.
type InstallSnapshotReq struct {
	Term     uint64
	LeaderID NodeID
	Anchor   opid.OpID
	GTIDSet  string // executed GTID set at the anchor
	Config   []byte // encoded membership at the anchor (EncodeConfig)
	Total    uint64 // checkpoint size in bytes, constant across chunks
	Offset   uint64 // byte offset of Chunk within the checkpoint
	Chunk    []byte
	Done     bool // last chunk; follower installs on receipt
}

func (*InstallSnapshotReq) Type() MsgType { return MsgInstallSnapshotReq }

// InstallSnapshotResp acknowledges a snapshot chunk. NextOffset is the
// next byte the follower wants, which lets the leader resume a transfer
// after drops or restarts instead of starting over. Installed reports
// that the final chunk was applied and the follower is ready for
// AppendEntries at Anchor.Index+1.
type InstallSnapshotResp struct {
	Term       uint64
	From       NodeID
	Success    bool
	NextOffset uint64
	Installed  bool
}

func (*InstallSnapshotResp) Type() MsgType { return MsgInstallSnapshotResp }

// ShardID identifies one raft ring (shard) inside a multi-shard process.
// Shard 0 is a valid shard; single-ring deployments never emit shard
// frames at all, so the tag space stays backward compatible.
type ShardID uint32

// ShardEnvelope wraps an encoded inner message with the shard it belongs
// to, so one transport endpoint per node can carry the traffic of every
// ring hosted by the process. Inner holds Marshal-encoded bytes rather
// than a Message so the envelope's metered size accounts for the real
// payload and the demux layer can route without re-encoding.
type ShardEnvelope struct {
	Shard ShardID
	Inner []byte
}

func (*ShardEnvelope) Type() MsgType { return MsgShardEnvelope }

// ShardHeartbeat is one shard's piggybacked heartbeat inside a
// CoalescedHeartbeat: the Marshal-encoded empty AppendEntriesReq that the
// shard's leader would have sent on its own timer.
type ShardHeartbeat struct {
	Shard ShardID
	Req   []byte
}

// CoalescedHeartbeat carries the heartbeats of every shard whose leader
// lives on the sending node and replicates to the receiving peer, in one
// physical message — collapsing O(shards × peers) heartbeat traffic into
// O(peers) (multiraft coalescing, DESIGN.md §8).
type CoalescedHeartbeat struct {
	Items []ShardHeartbeat
}

func (*CoalescedHeartbeat) Type() MsgType { return MsgCoalescedHeartbeat }

// --- binary codec ---

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool)  { e.u8(b2u(v)) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *encoder) opid(o opid.OpID) {
	e.u64(o.Term)
	e.u64(o.Index)
}
func (e *encoder) bytes(b []byte) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) str(s string) { e.bytes([]byte(s)) }
func (e *encoder) nodeList(ids []NodeID) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(ids)))
	for _, id := range ids {
		e.str(string(id))
	}
}

func b2u(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated %s", what)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail("u8")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) bool() bool { return d.u8() == 1 }

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail("u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail("u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) opid() opid.OpID {
	t := d.u64()
	i := d.u64()
	return opid.OpID{Term: t, Index: i}
}

func (d *decoder) bytes() []byte {
	if d.err != nil || len(d.buf) < 4 {
		d.fail("bytes len")
		return nil
	}
	n := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	if uint32(len(d.buf)) < n {
		d.fail("bytes body")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := append([]byte{}, d.buf[:n]...)
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) nodeList() []NodeID {
	if d.err != nil || len(d.buf) < 4 {
		d.fail("node list")
		return nil
	}
	n := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	if n > 1<<16 {
		d.fail("node list size")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]NodeID, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, NodeID(d.str()))
	}
	return out
}

func encodeLogEntry(e *encoder, le *LogEntry) {
	e.opid(le.OpID)
	e.u8(uint8(le.Kind))
	e.bool(le.HasGTID)
	e.str(string(le.GTID.Source))
	e.u64(uint64(le.GTID.ID))
	e.bool(le.IsProxy)
	if le.IsProxy {
		// PROXY_OP: metadata only. The payload length is carried so the
		// reconstituting proxy can sanity-check, but no payload bytes.
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(le.Payload)))
	} else {
		e.bytes(le.Payload)
	}
}

func decodeLogEntry(d *decoder) LogEntry {
	var le LogEntry
	le.OpID = d.opid()
	le.Kind = EntryType(d.u8())
	le.HasGTID = d.bool()
	le.GTID.Source = gtid.UUID(d.str())
	le.GTID.ID = int64(d.u64())
	le.IsProxy = d.bool()
	if le.IsProxy {
		// length only; payload stays nil
		if len(d.buf) < 4 {
			d.fail("proxy len")
		} else {
			d.buf = d.buf[4:]
		}
	} else {
		le.Payload = d.bytes()
	}
	return le
}

// EncodeConfig serializes a Config for storage in an EntryConfig payload.
func EncodeConfig(c Config) []byte {
	e := &encoder{}
	e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(c.Members)))
	for _, m := range c.Members {
		e.str(string(m.ID))
		e.str(string(m.Region))
		e.bool(m.Voter)
		e.bool(m.Witness)
	}
	return e.buf
}

// DecodeConfig parses an EntryConfig payload.
func DecodeConfig(data []byte) (Config, error) {
	d := &decoder{buf: data}
	if len(d.buf) < 4 {
		return Config{}, fmt.Errorf("wire: truncated config")
	}
	n := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	if n > 1<<16 {
		return Config{}, fmt.Errorf("wire: config too large")
	}
	c := Config{Members: make([]Member, 0, n)}
	for i := uint32(0); i < n; i++ {
		var m Member
		m.ID = NodeID(d.str())
		m.Region = Region(d.str())
		m.Voter = d.bool()
		m.Witness = d.bool()
		c.Members = append(c.Members, m)
	}
	if d.err != nil {
		return Config{}, d.err
	}
	if len(d.buf) != 0 {
		return Config{}, fmt.Errorf("wire: %d trailing config bytes", len(d.buf))
	}
	return c, nil
}

// Marshal serializes a message with its type tag.
func Marshal(m Message) ([]byte, error) {
	e := &encoder{}
	e.u8(uint8(m.Type()))
	switch msg := m.(type) {
	case *AppendEntriesReq:
		e.u64(msg.Term)
		e.str(string(msg.LeaderID))
		e.opid(msg.PrevOpID)
		e.u64(msg.CommitIndex)
		e.u64(msg.ReadSeq)
		e.nodeList(msg.Route)
		e.nodeList(msg.ReturnPath)
		e.buf = binary.BigEndian.AppendUint32(e.buf, uint32(len(msg.Entries)))
		for i := range msg.Entries {
			encodeLogEntry(e, &msg.Entries[i])
		}
	case *AppendEntriesResp:
		e.u64(msg.Term)
		e.str(string(msg.From))
		e.bool(msg.Success)
		e.u64(msg.MatchIndex)
		e.u64(msg.LastIndex)
		e.u64(msg.ReadSeq)
		e.nodeList(msg.Route)
	case *RequestVoteReq:
		e.u64(msg.Term)
		e.str(string(msg.Candidate))
		e.opid(msg.LastOpID)
		e.u8(uint8(msg.Kind))
		e.opid(msg.Snapshot)
	case *RequestVoteResp:
		e.u64(msg.Term)
		e.str(string(msg.From))
		e.bool(msg.Granted)
		e.u8(uint8(msg.Kind))
		e.str(msg.Reason)
		e.str(string(msg.LastLeaderRegion))
		e.u64(msg.LastLeaderTerm)
	case *MockElectionResult:
		e.u64(msg.Term)
		e.str(string(msg.From))
		e.bool(msg.Success)
		e.str(msg.Reason)
	case *StartElection:
		e.u64(msg.Term)
		e.str(string(msg.From))
		e.bool(msg.Mock)
		e.opid(msg.Snapshot)
	case *InstallSnapshotReq:
		e.u64(msg.Term)
		e.str(string(msg.LeaderID))
		e.opid(msg.Anchor)
		e.str(msg.GTIDSet)
		e.bytes(msg.Config)
		e.u64(msg.Total)
		e.u64(msg.Offset)
		e.bytes(msg.Chunk)
		e.bool(msg.Done)
	case *InstallSnapshotResp:
		e.u64(msg.Term)
		e.str(string(msg.From))
		e.bool(msg.Success)
		e.u64(msg.NextOffset)
		e.bool(msg.Installed)
	case *ShardEnvelope:
		e.u32(uint32(msg.Shard))
		e.bytes(msg.Inner)
	case *CoalescedHeartbeat:
		e.u32(uint32(len(msg.Items)))
		for _, it := range msg.Items {
			e.u32(uint32(it.Shard))
			e.bytes(it.Req)
		}
	default:
		return nil, fmt.Errorf("wire: unknown message type %T", m)
	}
	return e.buf, nil
}

// Unmarshal parses a message produced by Marshal.
func Unmarshal(data []byte) (Message, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("wire: empty message")
	}
	d := &decoder{buf: data[1:]}
	var m Message
	switch MsgType(data[0]) {
	case MsgAppendEntriesReq:
		msg := &AppendEntriesReq{}
		msg.Term = d.u64()
		msg.LeaderID = NodeID(d.str())
		msg.PrevOpID = d.opid()
		msg.CommitIndex = d.u64()
		msg.ReadSeq = d.u64()
		msg.Route = d.nodeList()
		msg.ReturnPath = d.nodeList()
		if d.err == nil {
			if len(d.buf) < 4 {
				d.fail("entry count")
			} else {
				n := binary.BigEndian.Uint32(d.buf)
				d.buf = d.buf[4:]
				if n > 1<<20 {
					d.fail("entry count size")
				}
				for i := uint32(0); i < n && d.err == nil; i++ {
					msg.Entries = append(msg.Entries, decodeLogEntry(d))
				}
			}
		}
		m = msg
	case MsgAppendEntriesResp:
		msg := &AppendEntriesResp{}
		msg.Term = d.u64()
		msg.From = NodeID(d.str())
		msg.Success = d.bool()
		msg.MatchIndex = d.u64()
		msg.LastIndex = d.u64()
		msg.ReadSeq = d.u64()
		msg.Route = d.nodeList()
		m = msg
	case MsgRequestVoteReq:
		msg := &RequestVoteReq{}
		msg.Term = d.u64()
		msg.Candidate = NodeID(d.str())
		msg.LastOpID = d.opid()
		msg.Kind = VoteKind(d.u8())
		msg.Snapshot = d.opid()
		m = msg
	case MsgRequestVoteResp:
		msg := &RequestVoteResp{}
		msg.Term = d.u64()
		msg.From = NodeID(d.str())
		msg.Granted = d.bool()
		msg.Kind = VoteKind(d.u8())
		msg.Reason = d.str()
		msg.LastLeaderRegion = Region(d.str())
		msg.LastLeaderTerm = d.u64()
		m = msg
	case MsgMockElectionResult:
		msg := &MockElectionResult{}
		msg.Term = d.u64()
		msg.From = NodeID(d.str())
		msg.Success = d.bool()
		msg.Reason = d.str()
		m = msg
	case MsgStartElection:
		msg := &StartElection{}
		msg.Term = d.u64()
		msg.From = NodeID(d.str())
		msg.Mock = d.bool()
		msg.Snapshot = d.opid()
		m = msg
	case MsgInstallSnapshotReq:
		msg := &InstallSnapshotReq{}
		msg.Term = d.u64()
		msg.LeaderID = NodeID(d.str())
		msg.Anchor = d.opid()
		msg.GTIDSet = d.str()
		msg.Config = d.bytes()
		msg.Total = d.u64()
		msg.Offset = d.u64()
		msg.Chunk = d.bytes()
		msg.Done = d.bool()
		m = msg
	case MsgInstallSnapshotResp:
		msg := &InstallSnapshotResp{}
		msg.Term = d.u64()
		msg.From = NodeID(d.str())
		msg.Success = d.bool()
		msg.NextOffset = d.u64()
		msg.Installed = d.bool()
		m = msg
	case MsgShardEnvelope:
		msg := &ShardEnvelope{}
		msg.Shard = ShardID(d.u32())
		msg.Inner = d.bytes()
		m = msg
	case MsgCoalescedHeartbeat:
		msg := &CoalescedHeartbeat{}
		n := d.u32()
		if n > 1<<16 {
			d.fail("coalesced heartbeat count")
		}
		for i := uint32(0); i < n && d.err == nil; i++ {
			var it ShardHeartbeat
			it.Shard = ShardID(d.u32())
			it.Req = d.bytes()
			msg.Items = append(msg.Items, it)
		}
		m = msg
	default:
		return nil, fmt.Errorf("wire: unknown message tag %d", data[0])
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(d.buf))
	}
	return m, nil
}
