module myraft

go 1.24
