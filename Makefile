.PHONY: check lint test build vet race chaos bench obs

# Full gate: lint + build + tests (incl. the 20-seed chaos campaign) +
# race detector + bench smoke. This is what CI runs.
check:
	./scripts/check.sh

lint:
	./scripts/check.sh lint

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Race coverage delegates to check.sh so the package list lives in one
# place (the Makefile copy used to drift behind it).
race:
	./scripts/check.sh race

# Fixed-seed chaos smoke; the full randomized campaign runs as part of
# `make test` / `make check` via `go test ./internal/chaos`.
chaos:
	./scripts/check.sh chaos

bench:
	go test -bench=. -benchtime=1x -run '^$$' .

# Observability slice: write-path tracing, metrics registries, and the
# admin /metrics + /trace scrapes, race detector on.
obs:
	./scripts/check.sh obs
