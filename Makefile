.PHONY: check test build vet race bench

# Full gate: vet + build + tests + race detector on the concurrency-heavy
# packages. This is what CI runs.
check:
	./scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race -p 1 ./internal/raft ./internal/readpath ./internal/cluster

bench:
	go test -bench=. -benchtime=1x -run '^$$' .
